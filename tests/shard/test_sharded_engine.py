"""Unit tests of the sharded engine: layout, views, routing, guards."""

import pytest

from repro.core.config import EngineConfig
from repro.core.audit import audit
from repro.core.engine import CorrelationEngine, engine
from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    RemoveAnnotations,
    RemoveTuples,
)
from repro.core import persistence
from repro.errors import InvalidThresholdError, MaintenanceError
from repro.shard import ShardedEngine, modulo_partitioner, partition_relation
from tests.conftest import (
    assert_equivalent_to_remine,
    make_relation,
)

CONFIG = EngineConfig(min_support=0.25, min_confidence=0.6, validate=True)


def sharded(relation=None, shards=3, **overrides):
    manager = ShardedEngine(
        relation if relation is not None else make_relation(),
        CONFIG.replace(shards=shards, **overrides))
    manager.mine()
    return manager


class TestFactoryDispatch:
    def test_factory_builds_sharded_engine_for_sharded_configs(self):
        assert isinstance(engine(make_relation(), CONFIG), CorrelationEngine)
        manager = engine(make_relation(), CONFIG.replace(shards=3))
        assert isinstance(manager, ShardedEngine)
        assert manager.shard_count == 3

    def test_config_rejects_bad_shard_settings(self):
        with pytest.raises(InvalidThresholdError, match="shards"):
            CONFIG.replace(shards=0)
        with pytest.raises(InvalidThresholdError, match="shard_workers"):
            CONFIG.replace(shard_workers=0)

    def test_sharded_engine_rejects_foreign_substrates(self):
        manager = ShardedEngine(make_relation(), CONFIG.replace(shards=2))
        with pytest.raises(MaintenanceError, match="own per-shard"):
            manager.mine(substrate=object())


class TestPartitionLayout:
    def test_partition_maps_are_mutually_inverse(self):
        manager = sharded()
        for tid in manager.relation.tids():
            shard, local = manager.locate(tid)
            assert manager.global_tids(shard)[local] == tid
        total = sum(len(manager.global_tids(shard))
                    for shard in range(manager.shard_count))
        assert total == manager.relation.live_count

    def test_default_layout_is_modulo(self):
        manager = sharded()
        for tid in manager.relation.tids():
            assert manager.shard_of(tid) == tid % manager.shard_count

    def test_partitioner_out_of_range_rejected(self):
        manager = ShardedEngine(make_relation(),
                                CONFIG.replace(shards=2),
                                partitioner=lambda tid: 5)
        with pytest.raises(MaintenanceError, match="outside 0..1"):
            manager.mine()

    def test_tombstones_are_owned_by_no_shard(self):
        relation = make_relation()
        relation.delete(2)
        manager = sharded(relation)
        assert manager.locate(2) is None
        assert manager.database.transaction(2) == frozenset()

    def test_bulk_encode_matches_encode_tuple_with_and_without_schema(self):
        """The bulk encoder must track encode_tuple exactly — including
        the schema-token branch no other shard test exercises."""
        from repro.mining.itemsets import ItemVocabulary
        from repro.relation.schema import Schema
        from repro.relation.relation import AnnotatedRelation
        from repro.relation.transactions import encode_tuple
        from repro.shard import TokenInterner, build_substrate

        schemaless = make_relation()
        schemaful = AnnotatedRelation(Schema(("color", "size")))
        for row in schemaless:
            schemaful.insert(row.values, sorted(row.annotation_ids))
        schemaful.set_labels(1, ["Concept_X"])
        for relation in (schemaless, schemaful):
            fast_vocab = ItemVocabulary()
            substrate = build_substrate(relation,
                                        TokenInterner(fast_vocab))
            slow_vocab = ItemVocabulary()
            for tid in relation.tids():
                expected = encode_tuple(relation, tid, slow_vocab)
                got = substrate.database.transaction(tid)
                as_items = lambda vocab, ids: {
                    (vocab.item(i).kind, vocab.item(i).token) for i in ids}
                assert as_items(fast_vocab, got) == \
                    as_items(slow_vocab, expected)
                if got:
                    assert substrate.index.count(tuple(sorted(got))) >= 1

    def test_partition_relation_renumbers_densely(self):
        relation = make_relation()
        shards, global_of, local_of = partition_relation(
            relation, modulo_partitioner(2), 2)
        assert [shard.live_count for shard in shards] == [4, 4]
        assert global_of[0] == [0, 2, 4, 6]
        assert local_of[6] == (0, 3)
        assert shards[0].tuple(3).values == relation.tuple(6).values

    def test_inserts_extend_the_owning_shard_maps(self):
        manager = sharded()
        before = manager.relation.tid_range
        manager.insert_annotated([(("1", "3"), ("A", "B"))])
        shard, local = manager.locate(before)
        assert shard == before % manager.shard_count
        assert manager.global_tids(shard)[local] == before


class TestGlobalViews:
    def test_index_view_matches_monolithic_index(self):
        relation = make_relation()
        mono = CorrelationEngine(relation.copy(), CONFIG)
        mono.mine()
        manager = sharded(relation.copy())
        for token in ("A", "B"):
            mono_item = mono.vocabulary.find_annotation(token)
            shard_item = manager.vocabulary.find_annotation(token)
            assert manager.index.tids(shard_item) == \
                mono.index.tids(mono_item)
            assert manager.index.frequency(shard_item) == \
                mono.index.frequency(mono_item)
        mono_freq = {mono.vocabulary.item(item).token: count
                     for item, count
                     in mono.index.annotation_frequencies().items()}
        shard_freq = {manager.vocabulary.item(item).token: count
                      for item, count
                      in manager.index.annotation_frequencies().items()}
        assert shard_freq == mono_freq

    def test_database_view_reencodes_every_tuple(self):
        manager = sharded()
        from repro.relation.transactions import encode_tuple

        for tid in range(manager.relation.tid_range):
            expected = (encode_tuple(manager.relation, tid,
                                     manager.vocabulary)
                        if manager.relation.is_live(tid) else frozenset())
            assert manager.database.transaction(tid) == expected
        assert len(manager.database.transactions) == \
            manager.relation.tid_range

    def test_audit_passes_on_a_maintained_sharded_engine(self):
        manager = sharded()
        manager.apply_batch([
            AddAnnotations.build([(3, "A"), (7, "B")]),
            AddAnnotatedTuples.build([(("1", "3"), ("A", "B"))]),
            RemoveAnnotations.build([(1, "B")]),
            RemoveTuples.build([0]),
        ])
        report = audit(manager)
        assert report.consistent, report.summary()


class TestRoutedMaintenance:
    def test_single_event_apply_works(self):
        manager = sharded()
        report = manager.apply(AddAnnotations.build([(3, "A")]))
        assert report.event == "add-annotations"
        assert_equivalent_to_remine(manager)

    def test_batch_report_names_touched_shards(self):
        manager = sharded()
        report = manager.apply_batch([
            AddAnnotations.build([(0, "B"), (1, "A")]),
        ])
        assert 1 <= report.shards_touched <= manager.shard_count
        assert report.events == 1

    def test_elided_insert_consumes_global_and_local_tids(self):
        manager = sharded()
        base = manager.relation.tid_range
        manager.apply_batch([
            AddAnnotatedTuples.build([(("1", "3"), ("A",)),
                                      (("4", "5"), ())]),
            RemoveTuples.build([base]),
        ])
        assert not manager.relation.is_live(base)
        assert manager.relation.is_live(base + 1)
        shard, local = manager.locate(base)
        assert not manager.shard_engines[shard].relation.is_live(local)
        assert_equivalent_to_remine(manager)

    def test_revision_bumps_once_per_batch(self):
        manager = sharded()
        revision = manager.revision
        manager.apply_batch([
            AddAnnotations.build([(3, "A")]),
            AddAnnotations.build([(5, "B")]),
        ])
        assert manager.revision == revision + 1

    def test_catalog_is_memoized_per_revision(self):
        manager = sharded()
        catalog = manager.catalog()
        assert manager.catalog() is catalog
        manager.apply(AddAnnotations.build([(3, "A")]))
        refreshed = manager.catalog()
        assert refreshed is not catalog
        assert refreshed.revision == manager.revision

    def test_out_of_band_mutation_detected(self):
        manager = sharded()
        manager.relation.annotate(0, "B")
        with pytest.raises(MaintenanceError, match="outside the engine"):
            manager.apply(AddAnnotations.build([(1, "A")]))

    def test_remine_repartitions_from_current_state(self):
        manager = sharded()
        manager.apply_batch([AddAnnotatedTuples.build(
            [(("1", "3"), ("A", "B"))] * 3)])
        signature = manager.signature()
        manager.mine()
        assert manager.signature() == signature
        assert_equivalent_to_remine(manager)


class TestExploitationParity:
    """The read views keep every exploitation consumer's answers
    identical to the monolithic engine's."""

    def _pair(self):
        mono = CorrelationEngine(make_relation(), CONFIG)
        mono.mine()
        return mono, sharded()

    def test_recommender_and_removal_scan_agree(self):
        from repro.exploitation.recommender import (
            MissingAnnotationRecommender,
        )
        from repro.exploitation.removal import UnexplainedAnnotationFinder

        mono, manager = self._pair()
        assert (
            sorted((r.tid, r.annotation_id)
                   for r in MissingAnnotationRecommender(manager).scan())
            == sorted((r.tid, r.annotation_id)
                      for r in MissingAnnotationRecommender(mono).scan()))
        assert (
            sorted((s.tid, s.annotation_id)
                   for s in UnexplainedAnnotationFinder(manager).scan())
            == sorted((s.tid, s.annotation_id)
                      for s in UnexplainedAnnotationFinder(mono).scan()))

    def test_insert_advisor_rides_the_database_view(self):
        from repro.exploitation.insert_advisor import InsertAdvisor

        manager = sharded()
        with InsertAdvisor(manager) as advisor:
            tid = manager.relation.tid_range
            manager.insert_annotated([(("1", "3"), ())])
            recommended = {(r.tid, r.annotation_id)
                           for r in advisor.drain()}
        assert (tid, "A") in recommended

    def test_explain_rule_counts_match(self):
        from repro.core.explain import explain_rule

        mono, manager = self._pair()
        for engine_under_test in (mono, manager):
            rule = max(engine_under_test.rules,
                       key=lambda r: (r.confidence, r.support))
            evidence = explain_rule(engine_under_test, rule, max_tids=20)
            assert evidence.rhs_count == \
                engine_under_test.index.frequency(rule.rhs)

    def test_generalized_mining_and_updates_agree(self, tmp_path):
        """Label maintenance (generalizer) stays exact through the
        routed write path — mine and incremental updates both."""
        from repro.app.session import Session
        from tests.app.test_session import DATASET, GENERALIZATIONS, UPDATES

        (tmp_path / "data.txt").write_text(DATASET)
        (tmp_path / "gen.txt").write_text(GENERALIZATIONS)
        (tmp_path / "updates.txt").write_text(UPDATES)
        mined, updated = [], []
        for shards in (1, 3):
            session = Session(shards=shards)
            session.load_dataset(tmp_path / "data.txt")
            session.load_generalizations(tmp_path / "gen.txt")
            session.mine(0.25, 0.6)
            mined.append(session.manager.signature())
            session.add_annotations_from_file(tmp_path / "updates.txt")
            updated.append(session.manager.signature())
            assert_equivalent_to_remine(session.manager)
        assert mined[0] == mined[1]
        assert updated[0] == updated[1]


class TestShardWorkers:
    @pytest.mark.parametrize("workers", (1, 2, 8))
    def test_worker_count_never_changes_the_answer(self, workers):
        baseline = sharded(shards=3)
        manager = sharded(shards=3, shard_workers=workers)
        assert manager.signature() == baseline.signature()


class TestPersistenceV3:
    def test_sharded_snapshot_round_trips_layout_and_rules(self, tmp_path):
        manager = sharded()
        manager.apply(AddAnnotations.build([(3, "A")]))
        path = tmp_path / "sharded.json"
        persistence.save(manager, path)
        restored = persistence.load(path)
        assert isinstance(restored, ShardedEngine)
        assert restored.shard_count == manager.shard_count
        assert restored.signature() == manager.signature()
        assert restored.revision == manager.revision
        assert restored.assignment() == manager.assignment()

    def test_custom_layout_survives_restore(self):
        relation = make_relation()
        manager = ShardedEngine(relation, CONFIG.replace(shards=2),
                                partitioner=lambda tid: 0 if tid < 6 else 1)
        manager.mine()
        restored = persistence.restore(persistence.snapshot(manager))
        assert restored.assignment() == manager.assignment()
        assert restored.signature() == manager.signature()

    def test_monolithic_snapshots_omit_the_shard_key(self):
        manager = CorrelationEngine(make_relation(), CONFIG)
        manager.mine()
        document = persistence.snapshot(manager)
        assert "shards" not in document
        assert isinstance(persistence.restore(document), CorrelationEngine)

    def test_corrupted_shard_layout_rejected(self):
        document = persistence.snapshot(sharded())
        document["shards"]["assignment"][0] = 99
        from repro.errors import FormatError

        with pytest.raises(FormatError, match="outside 0..2"):
            persistence.restore(document)
        document["shards"] = {"count": 0, "assignment": []}
        with pytest.raises(FormatError, match="invalid count"):
            persistence.restore(document)

    def test_session_status_reports_the_restored_layout(self):
        """A monolithic-default session adopting a sharded snapshot
        must report the snapshot's layout, not its own setting."""
        from repro.app.session import Session

        restored = persistence.restore(persistence.snapshot(sharded()))
        session = Session()  # shards=1 default
        session.restore_snapshot(restored, "(snapshot)")
        assert session.status()["shards"] == 3
        assert Session(shards=2).status()["shards"] == 2  # no manager yet

    def test_mine_rejects_mismatched_substrate(self):
        from repro.core.engine import EncodedSubstrate
        from repro.core.annotation_index import VerticalIndex
        from repro.mining.itemsets import ItemVocabulary, TransactionDatabase

        manager = CorrelationEngine(make_relation(), CONFIG)
        with pytest.raises(MaintenanceError, match="different vocabulary"):
            manager.mine(substrate=EncodedSubstrate(
                database=TransactionDatabase(manager.vocabulary),
                index=VerticalIndex(ItemVocabulary())))

    def test_v2_documents_still_load(self):
        manager = CorrelationEngine(make_relation(), CONFIG)
        manager.mine()
        document = persistence.snapshot(manager)
        document["format_version"] = 2
        restored = persistence.restore(document)
        assert restored.signature() == manager.signature()

"""The persistent shard pool and worker-built substrates.

Pins the contracts of :mod:`repro.shard.pool` — refcounted segment
leases, lazy pool start with cached platform failure, no worker
processes surviving ``close()`` — and the bit-for-bit differential for
worker-built pages: a bitmap index built in a worker and written into a
pre-allocated shared segment must hydrate back identical to the index
the parent would have built from the same transactions, across
randomized streams and the byte/word-seam transaction counts where a
fixed-width page gains or loses a trailing byte.
"""

import pytest

from repro.core.annotation_index import VerticalIndex
from repro.core.engine import CorrelationEngine
from repro.core.config import EngineConfig
from repro.mining.bitmap import BitmapIndex
from repro.mining.pages import BitmapPageSegment, live_segments
from repro.mining.itemsets import ItemVocabulary
from repro.shard import ShardedEngine
from repro.shard.pool import (
    SegmentManager,
    ShardPool,
    available_cpus,
    live_pool_count,
    shutdown_live_pools,
)
from tests.conftest import make_relation


@pytest.fixture(autouse=True)
def no_leaks():
    yield
    shutdown_live_pools()
    assert live_segments() == (), "test leaked shared-memory segments"
    assert live_pool_count() == 0, "test leaked pool workers"


class TestAvailableCpus:
    def test_floors_at_one(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: None)
        monkeypatch.delattr(os, "process_cpu_count", raising=False)
        assert available_cpus() == 1

    def test_prefers_affinity_aware_count(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        monkeypatch.setattr(os, "process_cpu_count", lambda: 2,
                            raising=False)
        assert available_cpus() == 2

    def test_engine_worker_sizing_respects_it(self, monkeypatch):
        import repro.shard.engine as engine_module

        monkeypatch.setattr(engine_module, "available_cpus", lambda: 2)
        sharded = ShardedEngine(
            make_relation(),
            EngineConfig(min_support=0.25, min_confidence=0.6, shards=4))
        assert sharded._workers() == 2


class TestSegmentManager:
    def test_last_release_destroys(self):
        manager = SegmentManager()
        segment = manager.adopt(BitmapPageSegment.pack([{1: 0b1011}]))
        name = segment.name
        assert manager.live() == (name,)
        manager.retain(name)
        manager.release(name)
        assert manager.live() == (name,), "early release destroyed a lease"
        assert live_segments() == (name,)
        manager.release(name)
        assert manager.live() == ()
        assert live_segments() == ()

    def test_release_unknown_name_is_noop(self):
        manager = SegmentManager()
        manager.release("repro_pages_never_existed")
        assert len(manager) == 0

    def test_release_all_force_drops(self):
        manager = SegmentManager()
        first = manager.adopt(BitmapPageSegment.pack([{1: 0b1}]))
        second = manager.adopt(BitmapPageSegment.pack([{2: 0b10}]))
        manager.retain(first.name)
        manager.retain(second.name)
        manager.release_all()
        assert manager.live() == ()
        assert live_segments() == ()


class TestShardPool:
    def test_lazy_start_run_and_close(self):
        pool = ShardPool(workers=2)
        assert not pool.active
        results = pool.run(abs, [-3, 4, -5])
        if results is None:  # platform without process pools
            pytest.skip("process pools unavailable on this platform")
        assert results == [3, 4, 5]
        assert pool.active and live_pool_count() == 1
        pool.close()
        assert not pool.active and live_pool_count() == 0
        pool.close()  # idempotent
        # A closed pool restarts lazily.
        assert pool.run(abs, [-7]) == [7]
        pool.close()

    def test_platform_failure_is_cached(self, monkeypatch):
        import concurrent.futures

        calls = []

        class NoPool:
            def __init__(self, *args, **kwargs):
                calls.append(1)
                raise OSError("no process support")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            NoPool)
        pool = ShardPool(workers=2)
        assert pool.run(abs, [-1]) is None
        assert pool.run(abs, [-1]) is None
        assert calls == [1], "broken platform retried the executor"
        pool.close()

    def test_task_errors_propagate(self):
        pool = ShardPool(workers=2)
        if not pool.start():
            pytest.skip("process pools unavailable on this platform")
        with pytest.raises(ZeroDivisionError):
            pool.run(_divide_by, [0])
        pool.close()


def _divide_by(value):
    return 1 // value


def _random_transactions(rng, n_tuples, universe):
    return [
        frozenset(rng.sample(universe, rng.randint(0, min(5, len(universe)))))
        for _ in range(n_tuples)
    ]


def _assert_pages_match_parent_index(transactions):
    """Core differential: allocate → worker-style write → hydrate must
    reproduce the parent-built ``BitmapIndex`` bit for bit."""
    parent = BitmapIndex.from_transactions(transactions)
    items = sorted(frozenset().union(*transactions)) if transactions else ()
    segment = BitmapPageSegment.allocate(
        [(items, (len(transactions) + 7) // 8)])
    try:
        worker = BitmapIndex.from_transactions(transactions)
        mapping = worker.as_mapping()
        segment.write_pages(0, {item: mapping[item].bits
                                for item in mapping})
        pages = segment.shard_mapping(0)
        hydrated = VerticalIndex.from_bits(ItemVocabulary(),
                                           {item: pages[item].bits
                                            for item in pages})
        assert sorted(pages) == parent.items()
        for item in parent.items():
            assert pages[item].bits == parent.tidset(item).bits, (
                f"item {item} bits diverged at {len(transactions)} tuples")
            assert hydrated.tids(item) == frozenset(parent.tidset(item))
    finally:
        segment.close()
        segment.unlink()


class TestWorkerBuiltPages:
    @pytest.mark.parametrize("n_tuples", (0, 1, 7, 8, 9, 63, 64, 65))
    def test_seam_counts_bit_for_bit(self, n_tuples, seeds):
        """Byte (8) and word (64) seam tuple counts: the fixed-width
        page gains/loses trailing bytes exactly here."""
        rng = seeds.rng(500 + n_tuples)
        transactions = _random_transactions(rng, n_tuples,
                                            universe=range(1, 12))
        # Force occupancy of the last tid so the top bit of the page
        # sits exactly on the seam.
        if n_tuples:
            transactions[-1] = frozenset({1, 11})
        _assert_pages_match_parent_index(transactions)

    @pytest.mark.parametrize("seed", (61, 62, 63))
    def test_randomized_streams_bit_for_bit(self, seed, seeds):
        rng = seeds.rng(seed)
        transactions = _random_transactions(rng, rng.randint(10, 200),
                                            universe=range(1, 40))
        _assert_pages_match_parent_index(transactions)

    def test_layout_drift_is_rejected(self):
        segment = BitmapPageSegment.allocate([((1, 2, 3), 4)])
        try:
            from repro.errors import MiningError

            with pytest.raises(MiningError, match="layout drift"):
                segment.write_pages(0, {1: 0b1, 2: 0b10})
            with pytest.raises(MiningError, match="bytes wide"):
                segment.write_pages(0, {1: 1 << 40, 2: 0b1, 3: 0b1})
        finally:
            segment.close()
            segment.unlink()

    def test_worker_built_mine_matches_monolithic_signature(self):
        config = EngineConfig(min_support=0.25, min_confidence=0.6,
                              validate=True)
        relation = make_relation()
        mono = CorrelationEngine(relation.copy(), config)
        mono.mine()
        sharded = ShardedEngine(
            relation, config.replace(shards=3, shard_workers=2,
                                     shard_executor="process"))
        sharded.mine()
        # Hydrated shard indexes serve maintenance after the segment is
        # gone: frequencies must match an index built parent-side.
        for shard_engine in sharded.shard_engines:
            rebuilt = BitmapIndex.from_transactions(
                shard_engine.database.transactions)
            assert shard_engine.index.items() == rebuilt.items()
            for item in rebuilt.items():
                assert (shard_engine.index.tids(item)
                        == frozenset(rebuilt.tidset(item)))
        assert sharded.signature() == mono.signature()
        sharded.close()

"""Sharded engines behind the serving facade, including torn-read checks.

The facade must treat a sharded session exactly like a monolithic one:
same snapshots, same catalog queries, same flush semantics.  The
concurrency test hammers ``snapshot()``/``query()`` from reader threads
while a writer repeatedly flushes batches and re-mines the sharded
engine; no reader may ever observe a *torn* revision — a snapshot whose
rules tuple, catalog and revision disagree with each other, or two
snapshots at the same revision with different rule sets.

``REPRO_SHARDS`` (the CI axis) sets the shard count these sessions run
with, so the whole file re-runs at every axis value.
"""

import os
import threading

import pytest

from repro.app.service import CorrelationService
from repro.core.config import EngineConfig
from repro.core.engine import CorrelationEngine
from repro.core.events import AddAnnotatedTuples, AddAnnotations
from repro.shard import ShardedEngine
from tests.conftest import make_relation

SHARDS = max(2, int(os.environ.get("REPRO_SHARDS", "3")))
CONFIG = EngineConfig(min_support=0.25, min_confidence=0.6, shards=SHARDS)


@pytest.fixture
def service() -> CorrelationService:
    return CorrelationService(config=CONFIG)


class TestShardedSessions:
    def test_create_serves_a_sharded_engine(self, service):
        snap = service.create("hot", make_relation())
        hosted_engine = service._session("hot").engine
        assert isinstance(hosted_engine, ShardedEngine)
        assert hosted_engine.shard_count == SHARDS
        assert snap.catalog is not None and len(snap) == len(snap.rules)

    def test_sharded_session_matches_monolithic_session(self, service):
        service.create("sharded", make_relation())
        mono_service = CorrelationService(
            config=CONFIG.replace(shards=1))
        mono_service.create("mono", make_relation())
        for name, facade in (("sharded", service), ("mono", mono_service)):
            facade.submit(name, AddAnnotations.build([(3, "A")]))
            facade.submit(name, AddAnnotatedTuples.build(
                [(("1", "3"), ("A", "B"))]))
            facade.flush(name)
        assert service.snapshot("sharded").signature == \
            mono_service.snapshot("mono").signature
        # Interned ids depend on encode order, so compare the catalogs
        # token-rendered (the canonical listing order is token-stable).
        sharded_vocab = service._session("sharded").engine.vocabulary
        mono_vocab = mono_service._session("mono").engine.vocabulary
        assert sorted(r.render(sharded_vocab)
                      for r in service.query("sharded").all()) == \
            sorted(r.render(mono_vocab)
                   for r in mono_service.query("mono").all())

    def test_flush_bumps_one_revision_and_reports_shards(self, service):
        service.create("hot", make_relation())
        service.submit("hot", AddAnnotations.build([(3, "A")]))
        service.submit("hot", AddAnnotations.build([(5, "B")]))
        report = service.flush("hot")
        assert report.events == 2
        assert report.shards_touched >= 1
        assert service.snapshot("hot").revision == 2

    def test_verify_compares_against_monolithic_remine(self, service):
        service.create("hot", make_relation())
        assert service.verify("hot").equivalent


class TestPoolLifecycle:
    """The facade owns the engines, so it owns their worker pools:
    ``drop()`` and ``close()`` must reap them."""

    POOLED = CONFIG.replace(shard_workers=2, shard_executor="process")

    def test_drop_closes_the_engine_pool(self):
        from repro.mining.pages import live_segments
        from repro.shard.pool import live_pool_count

        service = CorrelationService(config=self.POOLED)
        service.create("hot", make_relation())
        assert live_pool_count() == 1
        service.drop("hot")
        assert live_pool_count() == 0, "drop() leaked pool workers"
        assert live_segments() == ()

    def test_service_close_reaps_every_tenant_pool(self):
        from repro.mining.pages import live_segments
        from repro.shard.pool import live_pool_count

        service = CorrelationService(config=self.POOLED)
        service.create("a", make_relation())
        service.create("b", make_relation())
        assert live_pool_count() == 2
        service.close()
        assert live_pool_count() == 0, "close() leaked pool workers"
        assert live_segments() == ()
        # Sessions stay usable: the pool restarts lazily on demand.
        service.submit("a", AddAnnotations.build([(0, "Z9")]))
        report = service.flush("a")
        assert report.events == 1
        assert service.verify("a").equivalent
        service.close()


class TestNoTornRevisions:
    def test_readers_never_observe_torn_state_during_sharded_remine(
            self, service):
        """Rules tuple, catalog and revision stay mutually consistent
        under concurrent flushes and full re-mines."""
        service.create("hot", make_relation())
        stop = threading.Event()
        failures: list[str] = []
        #: revision -> rule-set signature, as first observed.
        seen: dict[int, frozenset] = {}
        seen_lock = threading.Lock()

        def reader():
            last_revision = -1
            while not stop.is_set():
                snap = service.snapshot("hot")
                # The snapshot's three faces must describe one state.
                if snap.catalog is None:
                    failures.append("snapshot lost its catalog")
                    return
                if snap.rules is not snap.catalog.rules:
                    failures.append(
                        "torn snapshot: rules tuple is not the "
                        "catalog's tuple")
                    return
                if len(frozenset(snap.signature)) != len(snap.rules):
                    failures.append(
                        f"torn snapshot: {len(snap.rules)} rules vs "
                        f"{len(snap.signature)} signature entries")
                    return
                if snap.revision < last_revision:
                    failures.append("revision went backwards")
                    return
                last_revision = snap.revision
                with seen_lock:
                    previous = seen.setdefault(snap.revision,
                                               snap.signature)
                if previous != snap.signature:
                    failures.append(
                        f"two different rule sets served at revision "
                        f"{snap.revision}")
                    return
                # The query path must serve the same catalog state.
                top = service.query("hot").top(3, by="confidence")
                if any(rule.key not in
                       {r.key for r in service.catalog("hot").rules}
                       for rule in top):
                    failures.append("query served rules outside the "
                                    "current catalog")
                    return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for wave in range(4):
                service.submit("hot", AddAnnotations.build(
                    [(3, "A"), (wave % 8, "B")]))
                service.submit("hot", AddAnnotatedTuples.build(
                    [(("1", "2"), ("A",))]))
                service.flush("hot")
                service.mine("hot")  # full sharded re-mine under load
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=10)

        assert not failures, failures
        # 1 create + 4 waves x (1 flush + 1 mine).
        assert service.snapshot("hot").revision == 9
        assert service.verify("hot").equivalent


class TestSessionAndFactoryWiring:
    def test_session_mines_sharded_manager(self, tmp_path):
        from repro.app.session import Session
        from repro.io import dataset_format

        relation = make_relation()
        path = tmp_path / "data.txt"
        dataset_format.write_dataset(relation, path)
        session = Session(shards=SHARDS)
        session.load_dataset(path)
        session.mine(0.25, 0.6)
        assert isinstance(session.manager, ShardedEngine)
        assert session.status()["shards"] == SHARDS
        mono = Session()
        mono.load_dataset(path)
        mono.mine(0.25, 0.6)
        assert isinstance(mono.manager, CorrelationEngine)
        assert not isinstance(mono.manager, ShardedEngine)
        assert session.manager.signature() == mono.manager.signature()

    def test_session_rejects_bad_shards(self):
        from repro.app.session import Session
        from repro.errors import SessionError

        with pytest.raises(SessionError, match="shards"):
            Session(shards=0)

"""Journaled service behavior: WAL-before-mutate, restore, rotation
guard, checkpoint, and online rebalancing under live writes."""

import threading

import pytest

from repro.app.service import CorrelationService
from repro.core.config import EngineConfig
from repro.core.events import AddAnnotations, EventLog, RemoveAnnotations
from repro.errors import SessionError
from tests.conftest import make_relation
from tests.property.test_prop_shard import drawn_events

ENGINE = EngineConfig(min_support=0.25, min_confidence=0.6)


def journaled_service(tmp_path, **overrides):
    options = {"config": ENGINE, "journal_dir": tmp_path / "journal"}
    options.update(overrides)
    return CorrelationService(**options)


class TestWriteAhead:
    def test_flush_journals_the_batch_it_applied(self, tmp_path):
        service = journaled_service(tmp_path)
        service.create("s", make_relation())
        batch = [AddAnnotations.build([(3, "A")]),
                 RemoveAnnotations.build([(1, "B")])]
        for event in batch:
            service.submit("s", event)
        service.flush("s")
        store = service._session("s").journal
        records = list(store.records())
        assert [r.kind for r in records] == ["batch"]
        assert list(records[0].events) == batch
        status = service.journal_status("s")
        assert status["applied_seq"] == status["last_seq"] == 1
        assert status["lag"] == 0
        service.close()

    def test_failed_append_requeues_and_never_mutates(self, tmp_path):
        """The WAL write comes first: when it fails, the engine state
        and the queue are exactly as before the flush."""
        service = journaled_service(tmp_path)
        service.create("s", make_relation())
        hosted = service._session("s")
        before = hosted.engine.signature()

        def refuse(batch):
            raise OSError("disk full")

        hosted.journal.append_batch = refuse
        service.submit("s", AddAnnotations.build([(3, "A")]))
        with pytest.raises(OSError, match="disk full"):
            service.flush("s")
        assert service.pending("s") == 1   # batch back in the queue
        assert hosted.engine.signature() == before
        assert hosted.applied_seq == 0
        service.close()

    def test_empty_flush_journals_nothing(self, tmp_path):
        service = journaled_service(tmp_path)
        service.create("s", make_relation())
        service.flush("s")
        assert service.journal_status("s")["last_seq"] == 0
        service.close()

    def test_mine_is_journaled(self, tmp_path):
        service = journaled_service(tmp_path)
        service.create("s", make_relation())
        service.mine("s")
        store = service._session("s").journal
        assert [r.kind for r in store.records()] == ["mine"]
        service.close()


class TestRestore:
    def test_restart_restores_the_exact_rule_set(self, tmp_path):
        service = journaled_service(tmp_path)
        service.create("s", make_relation())
        for tid in (3, 5, 7):
            service.submit("s", AddAnnotations.build([(tid, "A")]))
            service.flush("s")
        live = service.snapshot("s")
        service.close()

        reborn = journaled_service(tmp_path)
        recovered = reborn.restore_sessions()
        assert set(recovered) == {"s"}
        assert recovered["s"].replay.records == 3
        assert reborn.snapshot("s").signature == live.signature
        # The restored session keeps journaling where it left off.
        reborn.submit("s", AddAnnotations.build([(6, "B")]))
        reborn.flush("s")
        assert reborn.journal_status("s")["last_seq"] == 4
        assert reborn.verify("s").equivalent
        reborn.close()

    def test_create_refuses_an_existing_journal(self, tmp_path):
        service = journaled_service(tmp_path)
        service.create("s", make_relation())
        service.close()
        reborn = journaled_service(tmp_path)
        with pytest.raises(SessionError, match="restore_session"):
            reborn.create("s", make_relation())
        reborn.close()

    def test_drop_keeps_the_store_for_resurrection(self, tmp_path):
        service = journaled_service(tmp_path)
        service.create("s", make_relation())
        service.submit("s", AddAnnotations.build([(3, "A")]))
        service.flush("s")
        signature = service.snapshot("s").signature
        service.drop("s")
        service.restore_session("s")
        assert service.snapshot("s").signature == signature
        service.close()

    def test_poison_flush_replays_equivalently(self, tmp_path):
        """The journal records the batch as submitted; replay mirrors
        the live poison semantics (prefix applied, poison dropped), so
        a restart lands on the same rules the live engine served."""
        service = journaled_service(tmp_path)
        service.create("s", make_relation())
        service.submit("s", AddAnnotations.build([(3, "A")]))
        service.submit("s", AddAnnotations.build([(999, "A")]))  # poison
        service.submit("s", AddAnnotations.build([(5, "A")]))
        with pytest.raises(SessionError, match="event 2 of 3"):
            service.flush("s")
        service.flush("s")  # drain the re-queued tail
        live = service.snapshot("s")
        service.close()

        reborn = journaled_service(tmp_path)
        reborn.restore_sessions()
        assert reborn.snapshot("s").signature == live.signature
        assert reborn.verify("s").equivalent
        reborn.close()

    def test_journal_status_none_without_a_journal(self):
        service = CorrelationService(config=ENGINE)
        service.create("s", make_relation())
        assert service.journal_status("s") is None
        with pytest.raises(SessionError, match="no journal"):
            service.checkpoint("s")
        service.close()


class TestCheckpoint:
    def test_checkpoint_anchors_the_applied_seq(self, tmp_path):
        service = journaled_service(tmp_path,
                                    journal_snapshot_every=None)
        service.create("s", make_relation())
        for tid in (3, 5):
            service.submit("s", AddAnnotations.build([(tid, "A")]))
            service.flush("s")
        status = service.checkpoint("s")
        assert status["snapshots"] == [0, 2]
        # A restart now loads the checkpoint and replays nothing.
        service.close()
        reborn = journaled_service(tmp_path)
        result = reborn.restore_session("s")
        assert result.snapshot_seq == 2
        assert result.replay.records == 0
        reborn.close()


class TestRotationGuard:
    """Bounded EventLog rotation must never evict an event the journal
    has not fsynced yet (regression: the dropped counter stays
    truthful and durability gates the eviction)."""

    def test_rotation_syncs_the_journal_first(self, tmp_path):
        calls = []
        log = EventLog(max_events=2,
                       ensure_durable=lambda: calls.append(len(calls)))
        events = [AddAnnotations.build([(tid, "A")]) for tid in range(4)]
        with pytest.warns(RuntimeWarning, match="rotating"):
            for event in events:
                log.record(event)
        # One durable gate per eviction, and the counter matches.
        assert len(calls) == 2
        assert log.dropped == 2
        assert list(log) == events[2:]

    def test_failed_sync_aborts_the_eviction(self):
        log = EventLog(max_events=1)
        log.record(AddAnnotations.build([(0, "A")]))

        def refuse():
            raise OSError("fsync failed")

        log.ensure_durable = refuse
        with pytest.raises(OSError, match="fsync failed"):
            log.record(AddAnnotations.build([(1, "A")]))
        # Nothing left memory, nothing was counted as dropped.
        assert log.dropped == 0
        assert len(log) == 1

    def test_service_flush_rotation_flushes_a_lazy_journal(self,
                                                           tmp_path):
        """With journal_fsync=False the WAL is only flushed on demand;
        a flush whose event recording rotates the log must leave the
        journal clean (synced) even though nothing else forces it."""
        service = journaled_service(tmp_path, journal_fsync=False,
                                    config=ENGINE.replace(
                                        max_log_events=2))
        service.create("s", make_relation())
        store = service._session("s").journal
        service.submit("s", AddAnnotations.build([(3, "A")]))
        service.flush("s")
        assert store.journal._dirty          # appended, not yet synced
        with pytest.warns(RuntimeWarning, match="rotating"):
            for tid in (5, 6):
                service.submit("s", AddAnnotations.build([(tid, "A")]))
            service.flush("s")
        engine_log = service._session("s").engine.log
        assert engine_log.dropped > 0
        assert not store.journal._dirty      # rotation forced the sync
        service.close()


class TestOnlineRebalance:
    def test_dry_run_changes_nothing(self, tmp_path):
        service = journaled_service(tmp_path)
        service.create("s", make_relation())
        before = service.snapshot("s")
        report = service.rebalance("s", shards=4, dry_run=True)
        assert not report.applied
        assert report.plan.target_shards == 4
        assert service.snapshot("s") is before   # not even a new view
        service.close()

    def test_rebalance_under_concurrent_writes(self, tmp_path):
        """Writers keep flushing while the rebalance builds, catches up
        from the journal and cuts over: no torn revision (exactly one
        bump for the cutover), no lost write, exact rules throughout."""
        service = journaled_service(tmp_path)
        relation = make_relation()
        service.create("s", relation)
        events = drawn_events(relation, count=12, seed=23)
        errors = []

        def writer():
            try:
                for event in events:
                    service.submit("s", event)
                    service.flush("s")
            except Exception as error:  # pragma: no cover — fail below
                errors.append(error)

        thread = threading.Thread(target=writer)
        thread.start()
        report = service.rebalance("s", shards=4)
        thread.join()
        assert not errors
        assert report.applied
        assert report.plan.target_shards == 4
        skew = service.skew("s")
        assert skew.shard_count == 4
        # Every write survived the cutover and the rules stay exact.
        assert service.journal_status("s")["last_seq"] >= len(events)
        assert service.verify("s").equivalent
        # The anchored layout is what a restart comes back with.
        live = service.snapshot("s")
        service.close()
        reborn = journaled_service(tmp_path)
        reborn.restore_sessions()
        assert reborn.snapshot("s").signature == live.signature
        assert reborn.skew("s").shard_count == 4
        reborn.close()

    def test_aborted_rebalance_leaves_the_session_untouched(
            self, tmp_path, monkeypatch):
        service = journaled_service(tmp_path)
        service.create("s", make_relation())
        before = service.snapshot("s")

        from repro.app import service as service_module

        class Diverged:
            def signature(self):
                return frozenset()

            def close(self):
                pass

        monkeypatch.setattr(service_module, "rebuild_with_plan",
                            lambda *args, **kwargs: Diverged())
        with pytest.raises(SessionError, match="diverged"):
            service.rebalance("s", shards=2)
        after = service.snapshot("s")
        assert after.revision == before.revision
        assert after.signature == before.signature
        service.close()

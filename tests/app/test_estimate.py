"""The approximate read tier: overlays, estimate snapshots, serving.

Covers the three layers of ``mode=estimate``: event-queue overlay
encoding (:mod:`repro.app.estimate`), the estimate snapshot itself
(exact at reference scale, bounded everywhere), and the serving
facade's lock-light read + async exact-refresh write path.
"""

import pytest

from repro.app.estimate import (
    ESTIMATE_METRICS,
    EstimateSnapshot,
    PendingOverlay,
    estimate_snapshot,
    overlay_from_events,
)
from repro.app.service import CorrelationService
from repro.app.session import Session
from repro.core.config import EngineConfig
from repro.core.engine import engine
from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
    RemoveAnnotations,
    RemoveTuples,
)
from repro.core.rules import RuleKind
from repro.errors import SessionError
from tests.conftest import make_relation

CONFIG = EngineConfig(min_support=0.25, min_confidence=0.6)


@pytest.fixture
def mined():
    manager = engine(make_relation(), min_support=0.25,
                     min_confidence=0.6, validate=True)
    manager.mine()
    return manager


def overlay_for(manager, events):
    return overlay_from_events(
        events, relation=manager.relation,
        vocabulary=manager.vocabulary,
        generalizer=manager.generalizer)


class TestPendingOverlay:
    def test_insert_rows_encode_known_items(self, mined):
        overlay = overlay_for(mined, [
            AddAnnotatedTuples.build([(("1", "2"), ("A",))])])
        assert overlay.inserts == 1 and len(overlay.rows) == 1
        row = overlay.rows[0]
        # The row must contain ids for both data tokens and the
        # annotation — all of which the mined vocabulary knows.
        assert len(row) == 3
        assert overlay.count_containing(row) == 1

    def test_unseen_tokens_are_skipped_not_interned(self, mined):
        vocab_before = len(mined.vocabulary)
        overlay = overlay_for(mined, [
            AddAnnotatedTuples.build([(("999", "2"), ("NEW",))])])
        assert len(mined.vocabulary) == vocab_before
        row = overlay.rows[0]
        # Only the known "2" (column 2) token survives the encoding.
        assert len(row) == 1

    def test_unannotated_rows_count_as_inserts(self, mined):
        overlay = overlay_for(mined, [
            AddUnannotatedTuples.build([("1", "2")])])
        assert overlay.inserts == 1
        assert overlay.removals == overlay.deferred == 0

    def test_arity_mismatch_matches_nothing(self):
        # A schema-bearing relation enforces arity at token time; the
        # reference fixture uses opaque tokens, so build one here.
        from repro.relation.relation import AnnotatedRelation
        from repro.relation.schema import Schema

        relation = AnnotatedRelation(Schema(["c1", "c2"]))
        for values, annotations in [(("1", "2"), ("A",)),
                                    (("1", "3"), ("A",)),
                                    (("4", "2"), ())] * 2:
            relation.insert(values, annotations)
        manager = engine(relation, min_support=0.25, min_confidence=0.6)
        manager.mine()
        overlay = overlay_for(manager, [
            AddAnnotatedTuples(rows=((("1", "2", "3", "4"), ("A",)),))])
        assert overlay.rows == (frozenset(),)
        # The well-formed twin row still encodes its known items.
        good = overlay_for(manager, [
            AddAnnotatedTuples.build([(("1", "2"), ("A",))])])
        assert len(good.rows[0]) == 3

    def test_removals_and_deferred_events_counted(self, mined):
        overlay = overlay_for(mined, [
            RemoveTuples.build([3, 7]),
            AddAnnotations.build([(0, "B")]),
            RemoveAnnotations.build([(1, "A")]),
        ])
        assert overlay.removals == 2
        assert overlay.deferred == 2
        assert overlay.inserts == 0
        assert not overlay.is_empty
        assert overlay_for(mined, []).is_empty

    def test_count_item(self):
        overlay = PendingOverlay(
            rows=(frozenset({1, 2}), frozenset({2, 3})),
            inserts=2, removals=0, deferred=0)
        assert overlay.count_item(2) == 2
        assert overlay.count_item(1) == 1
        assert overlay.count_containing(frozenset({2, 3})) == 1


class TestEstimateSnapshot:
    def test_exact_at_reference_scale(self, mined):
        snap = estimate_snapshot(mined, mined.catalog().rules, [],
                                 session="s", revision=1)
        assert isinstance(snap, EstimateSnapshot)
        assert snap.estimated and snap.revision == 1
        assert snap.db_size == mined.db_size
        assert len(snap) == len(mined.catalog().rules)
        for estimated in snap:
            rule = estimated.rule
            assert estimated.estimate.exact
            assert estimated.metric("support") == pytest.approx(rule.support)
            assert estimated.bound("support") == 0.0
            assert estimated.metric("confidence") == \
                pytest.approx(rule.confidence)

    def test_ordering_and_top_n(self, mined):
        rules = mined.catalog().rules
        by_support = estimate_snapshot(mined, rules, [], session="s",
                                       revision=1, by="support")
        values = [er.metric("support") for er in by_support]
        assert values == sorted(values, reverse=True)
        top = estimate_snapshot(mined, rules, [], session="s",
                                revision=1, by="support", n=2)
        assert top.rules == by_support.rules[:2]

    def test_kind_filter(self, mined):
        snap = estimate_snapshot(mined, mined.catalog().rules, [],
                                 session="s", revision=1,
                                 kind=RuleKind.DATA_TO_ANNOTATION)
        assert snap.rules
        assert all(er.rule.kind is RuleKind.DATA_TO_ANNOTATION
                   for er in snap)

    def test_significance_metrics_need_exact_mode(self, mined):
        with pytest.raises(SessionError, match="mode=exact"):
            estimate_snapshot(mined, mined.catalog().rules, [],
                              session="s", revision=1, by="p_value")

    def test_z_and_confidence_level_are_exclusive(self, mined):
        with pytest.raises(SessionError, match="not both"):
            estimate_snapshot(mined, mined.catalog().rules, [],
                              session="s", revision=1,
                              z=2.0, confidence_level=0.95)

    def test_confidence_level_resolves_z(self, mined):
        snap = estimate_snapshot(mined, mined.catalog().rules, [],
                                 session="s", revision=1,
                                 confidence_level=0.95)
        assert snap.confidence_level == 0.95
        assert snap.z == pytest.approx(1.959964, abs=1e-5)
        default = estimate_snapshot(mined, mined.catalog().rules, [],
                                    session="s", revision=1)
        assert default.z == 2.0 and default.confidence_level is None

    def test_pending_inserts_shift_counts_exactly(self, mined):
        rules = mined.catalog().rules
        before = estimate_snapshot(mined, rules, [], session="s",
                                   revision=1)
        pending = [AddAnnotatedTuples.build([(("1", "2"), ("A",))] * 4)]
        after = estimate_snapshot(mined, rules, pending, session="s",
                                  revision=1)
        assert after.db_size == before.db_size + 4
        assert after.pending_events == 1 and after.overlay_rows == 4
        footprint = overlay_for(mined, pending).rows[0]
        by_key = {er.rule.key: er for er in after}
        for estimated in before:
            rule = estimated.rule
            # Rules inside the pending rows' item footprint gain
            # exactly 4 hits; everything else is untouched.
            gain = 4 if frozenset(rule.lhs + (rule.rhs,)) <= footprint \
                else 0
            assert by_key[rule.key].estimate.count == \
                rule.union_count + gain
        # At least one rule actually absorbed the pending rows.
        assert any(by_key[er.rule.key].estimate.count
                   > er.rule.union_count for er in before)

    def test_pending_removals_shrink_db_size_only(self, mined):
        rules = mined.catalog().rules
        snap = estimate_snapshot(mined, rules,
                                 [RemoveTuples.build([0, 1])],
                                 session="s", revision=1)
        assert snap.db_size == mined.db_size - 2
        assert snap.deferred_events == 0

    def test_render_shows_the_bounds(self, mined):
        snap = estimate_snapshot(mined, mined.catalog().rules, [],
                                 session="s", revision=1)
        text = snap.rules[0].render(mined.vocabulary)
        assert "==>" in text and "±" in text

    def test_unknown_estimate_metric_rejected(self, mined):
        snap = estimate_snapshot(mined, mined.catalog().rules, [],
                                 session="s", revision=1)
        with pytest.raises(SessionError, match="unknown estimate metric"):
            snap.rules[0].metric("chi_square")
        assert set(ESTIMATE_METRICS) == {"support", "confidence", "lift"}


class TestServiceEstimate:
    @pytest.fixture
    def service(self):
        service = CorrelationService(config=CONFIG)
        service.create("s", make_relation())
        yield service
        service.close()

    def test_estimate_matches_the_published_revision(self, service):
        snap = service.estimate("s")
        assert snap.estimated and snap.revision == 1
        assert snap.session == "s"
        assert len(snap) == len(service.snapshot("s"))

    def test_estimate_never_disturbs_exact_reads(self, service):
        exact_before = service.snapshot("s")
        service.estimate("s")
        service.estimate("s", by="lift", n=2)
        assert service.snapshot("s") is exact_before
        assert service.snapshot("s").signature == exact_before.signature

    def test_queued_events_appear_in_the_estimate(self, service):
        service.submit("s", AddAnnotatedTuples.build(
            [(("1", "2"), ("A",))] * 3))
        snap = service.estimate("s")
        assert snap.pending_events == 1
        assert snap.overlay_rows == 3
        assert snap.db_size == 8 + 3
        # The exact tier still serves the pre-flush revision.
        assert service.snapshot("s").revision == snap.revision == 1

    def test_flush_async_publishes_the_exact_refresh(self, service):
        service.submit("s", AddAnnotatedTuples.build(
            [(("1", "2"), ("A",))]))
        future = service.flush_async("s")
        report = future.result(timeout=10)
        assert report.events == 1
        assert service.pending("s") == 0
        after = service.snapshot("s")
        assert after.revision == 2 and after.db_size == 9
        assert service.estimate("s").revision == 2

    def test_estimate_alone_sees_a_landed_flush(self, service):
        """No intervening exact read: the estimate path itself must
        notice the bumped revision and drop the stale cached catalog
        (regression — it used to serve the pre-flush rule set until
        some exact read refreshed the snapshot cache)."""
        service.estimate("s")   # publish + warm at revision 1
        service.submit("s", AddAnnotatedTuples.build(
            [(("1", "2"), ("A",))] * 3))
        service.flush_async("s").result(timeout=10)
        snap = service.estimate("s")
        assert snap.revision == 2
        assert snap.pending_events == 0 and snap.overlay_rows == 0
        catalog = service.catalog("s")
        assert {er.rule.key for er in snap} <= \
            {rule.key for rule in catalog.rules}
        by_key = {rule.key: rule for rule in catalog.rules}
        for er in snap:
            rule = by_key[er.rule.key]
            assert abs(er.metric("support") - rule.support) <= \
                er.bound("support")
        assert service.verify("s").equivalent

    def test_flush_async_unknown_session_fails_fast(self, service):
        with pytest.raises(SessionError, match="unknown session"):
            service.flush_async("ghost")

    def test_estimate_on_unmined_session_rejected(self, service):
        service.create("raw", make_relation(), mine=False)
        with pytest.raises(SessionError, match="no mined rules"):
            service.estimate("raw")

    def test_close_restarts_the_flush_executor_lazily(self, service):
        service.submit("s", AddAnnotations.build([(3, "A")]))
        assert service.flush_async("s").result(timeout=10).events == 1
        service.close()
        service.submit("s", AddAnnotations.build([(5, "A")]))
        assert service.flush_async("s").result(timeout=10).events == 1

    def test_estimate_instrumentation(self):
        from repro.server.metrics import ServiceInstrumentation

        bundle = ServiceInstrumentation()
        service = CorrelationService(config=CONFIG,
                                     instrumentation=bundle)
        try:
            service.create("s", make_relation())
            service.estimate("s")
            service.estimate("s")
            assert bundle.estimate_reads.value == 2
            assert bundle.estimate_seconds.count == 2
        finally:
            service.close()


class TestSessionEstimate:
    DATASET = ("1 2 Annot_1\n" "1 3 Annot_1 Annot_2\n" "1 2 Annot_1\n"
               "4 2\n" "1 3 Annot_1 Annot_2\n" "4 3 Annot_2\n"
               "1 5 Annot_1\n" "4 5\n")

    @pytest.fixture
    def session(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text(self.DATASET)
        session = Session(auto_flush_every=10)
        session.load_dataset(path)
        session.mine(0.25, 0.6)
        return session

    def test_estimate_rules_over_the_live_queue(self, session, tmp_path):
        update = tmp_path / "tuples.txt"
        update.write_text("1 2 Annot_1\n")
        session.add_annotated_tuples_from_file(update)   # queued
        assert session.pending_updates
        snap = session.estimate_rules(by="lift")
        assert snap.estimated and snap.overlay_rows == 1
        assert snap.db_size == 9
        values = [er.metric("lift") for er in snap]
        assert values == sorted(values, reverse=True)

    def test_significant_rules_ordered_by_p_value(self, session):
        significant = session.significant_rules(max_p_value=0.9, limit=5)
        catalog = session.catalog()
        p_values = [catalog.p_value_of(rule) for rule in significant]
        assert p_values == sorted(p_values)
        assert all(p <= 0.9 for p in p_values)

    def test_estimate_before_mine_rejected(self):
        with pytest.raises(SessionError, match="no rules mined"):
            Session().estimate_rules()

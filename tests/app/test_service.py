"""CorrelationService: named sessions, batched updates, concurrency."""

import threading
import time

import pytest

from repro.app.service import CorrelationService, ReadWriteLock, RuleSnapshot
from repro.core.config import EngineConfig
from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
)
from repro.core.rules import RuleKind
from repro.errors import MiningError, SessionError
from tests.conftest import make_relation

CONFIG = EngineConfig(min_support=0.25, min_confidence=0.6)


@pytest.fixture
def service():
    return CorrelationService(config=CONFIG)


class TestSessions:
    def test_create_mines_and_snapshots(self, service):
        snap = service.create("main", make_relation())
        assert isinstance(snap, RuleSnapshot)
        assert snap.session == "main"
        assert snap.revision == 1
        assert snap.backend == "apriori-fup"
        assert len(snap) > 0 and snap.pending_events == 0

    def test_multi_dataset_sessions_are_independent(self, service):
        service.create("left", make_relation())
        service.create("right", make_relation(
            [(("9", "9"), ("Z",))] * 4))
        assert service.sessions() == ("left", "right")
        assert (service.snapshot("left").signature
                != service.snapshot("right").signature)
        service.drop("left")
        assert service.sessions() == ("right",)

    def test_per_session_config_override(self, service):
        snap = service.create("vertical", make_relation(),
                              CONFIG.replace(backend="eclat"))
        assert snap.backend == "eclat"

    def test_duplicate_name_rejected(self, service):
        service.create("dup", make_relation())
        with pytest.raises(SessionError, match="already exists"):
            service.create("dup", make_relation())

    def test_unknown_session_rejected(self, service):
        with pytest.raises(SessionError, match="unknown session"):
            service.snapshot("ghost")

    def test_create_without_any_config_rejected(self):
        bare = CorrelationService()
        with pytest.raises(SessionError, match="EngineConfig"):
            bare.create("x", make_relation())

    def test_create_unmined_has_empty_snapshot(self, service):
        snap = service.create("lazy", make_relation(), mine=False)
        assert snap.revision == 0 and len(snap) == 0
        service.mine("lazy")
        assert len(service.snapshot("lazy")) > 0


class TestUpdateQueue:
    def test_submit_queues_without_applying(self, service):
        service.create("s", make_relation())
        before = service.snapshot("s")
        depth = service.submit("s", AddAnnotations.build([(3, "A")]))
        assert depth == 1 and service.pending("s") == 1
        assert service.snapshot("s").signature == before.signature

    def test_flush_applies_in_order_and_bumps_revision(self, service):
        service.create("s", make_relation())
        service.submit("s", AddAnnotations.build([(3, "A")]))
        service.submit("s", AddAnnotatedTuples.build(
            [(("1", "2"), ("A",))]))
        report = service.flush("s")
        assert [audit.event for audit in report] == [
            "add-annotations", "add-annotated-tuples"]
        snap = service.snapshot("s")
        assert snap.revision == 2 and snap.pending_events == 0
        assert snap.db_size == 9
        assert service.verify("s").equivalent

    def test_flush_returns_one_batch_report(self, service):
        service.create("s", make_relation())
        for _ in range(3):
            service.submit("s", AddAnnotations.build([(3, "A")]))
        report = service.flush("s")
        assert report.events == 3
        # Duplicate submissions of an already-present pair coalesce away.
        assert (report.plan_stats.pairs_collapsed
                + report.plan_stats.pairs_cancelled) >= 2
        assert "batch of 3 event(s)" in report.summary()
        # One flush == one revision bump, however deep the queue was.
        assert service.snapshot("s").revision == 2

    def test_flush_empty_queue_is_a_noop(self, service):
        service.create("s", make_relation())
        assert len(service.flush("s")) == 0
        assert service.snapshot("s").revision == 1

    def test_auto_flush_threshold(self):
        service = CorrelationService(config=CONFIG, auto_flush_every=2)
        service.create("s", make_relation())
        assert service.submit("s", AddAnnotations.build([(3, "A")])) == 1
        assert service.submit("s", AddAnnotations.build([(5, "A")])) == 0
        assert service.pending("s") == 0
        assert service.snapshot("s").revision == 2

    def test_bad_auto_flush_rejected(self):
        with pytest.raises(SessionError):
            CorrelationService(config=CONFIG, auto_flush_every=0)

    def test_concurrent_submit_does_not_pile_on_inline_flush(self):
        """Regression: the flush decision is atomic with the depth read.

        While one writer's inline auto-flush is still applying its
        batch, a second writer's submit must queue and return a
        truthful depth promptly — not claim a redundant inline flush
        and block on the write lock behind the first.
        """
        service = CorrelationService(config=CONFIG, auto_flush_every=2)
        service.create("s", make_relation())
        hosted = service._session("s")
        in_flush = threading.Event()
        release = threading.Event()
        real_apply_batch = hosted.engine.apply_batch

        def slow_apply_batch(events):
            in_flush.set()
            assert release.wait(timeout=5)
            return real_apply_batch(events)

        hosted.engine.apply_batch = slow_apply_batch
        depths: dict[str, int] = {}

        assert service.submit("s", AddAnnotations.build([(3, "A")])) == 1

        def trigger():   # second event crosses the threshold: flushes
            depths["trigger"] = service.submit(
                "s", AddAnnotations.build([(5, "A")]))

        flusher = threading.Thread(target=trigger)
        flusher.start()
        assert in_flush.wait(timeout=5), "inline flush never started"

        def bystander():  # submits while the inline flush is running
            depths["bystander"] = service.submit(
                "s", AddAnnotations.build([(0, "B")]))

        other = threading.Thread(target=bystander)
        other.start()
        other.join(timeout=2)
        assert not other.is_alive(), (
            "concurrent submit blocked behind the in-flight inline flush")
        assert depths["bystander"] == 1  # truthful depth, not a stale 0
        assert service.pending("s") == 1

        release.set()
        flusher.join(timeout=5)
        assert not flusher.is_alive()
        # The triggering submit re-reads the depth after its flush: the
        # bystander's event arrived meanwhile, so 0 would be a lie.
        assert depths["trigger"] == 1

        hosted.engine.apply_batch = real_apply_batch
        service.flush("s")
        assert service.pending("s") == 0
        assert service.verify("s").equivalent

    def test_many_writers_every_event_applied_exactly_once(self):
        """Multi-writer soak: whatever interleaving of inline flushes
        happens, each submitted event is applied exactly once."""
        service = CorrelationService(config=CONFIG, auto_flush_every=1)
        service.create("s", make_relation())
        hosted = service._session("s")
        applied: list[object] = []
        applied_lock = threading.Lock()
        real_apply_batch = hosted.engine.apply_batch

        def counting_apply_batch(events):
            with applied_lock:
                applied.extend(events)
            return real_apply_batch(events)

        hosted.engine.apply_batch = counting_apply_batch
        events = [AddAnnotatedTuples.build([((str(i), "2"), ("A",))])
                  for i in range(16)]
        threads = [threading.Thread(target=service.submit, args=("s", event))
                   for event in events]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        service.flush("s")   # drain anything left unclaimed

        assert service.pending("s") == 0
        assert sorted(id(event) for event in applied) == sorted(
            id(event) for event in events), "an event was lost or re-applied"
        assert service.snapshot("s").db_size == 8 + len(events)
        assert service.verify("s").equivalent

    def test_flush_failure_requeues_remainder_and_drops_poison(self, service):
        service.create("s", make_relation())
        good_before = AddAnnotations.build([(3, "A")])
        poison = AddAnnotations.build([(999, "A")])   # unknown tuple id
        good_after = AddAnnotations.build([(5, "A")])
        for event in (good_before, poison, good_after):
            service.submit("s", event)
        with pytest.raises(SessionError, match="event 2 of 3"):
            service.flush("s")
        # The event before the poison applied; the one after survived.
        assert service.pending("s") == 1
        snap = service.snapshot("s")
        assert snap.revision == 2 and snap.pending_events == 1

    def test_malformed_insert_row_gets_poison_isolation(self, service):
        """A schema-invalid row compiles out before mutation, so the
        per-event fallback preserves the re-queue/drop semantics."""
        service.create("s", make_relation())
        service.submit("s", AddAnnotations.build([(3, "A")]))
        service.submit("s", AddUnannotatedTuples(rows=((),)))  # empty row
        service.submit("s", AddAnnotations.build([(5, "A")]))
        with pytest.raises(SessionError, match="event 2 of 3"):
            service.flush("s")
        assert service.pending("s") == 1   # the tail survived
        service.flush("s")
        assert service.verify("s").equivalent

    def test_invalid_annotation_id_gets_poison_isolation(self, service):
        """An empty annotation id is caught at compile time, so the
        fallback isolates it instead of losing the queued tail."""
        service.create("s", make_relation())
        service.submit("s", AddAnnotatedTuples.build(
            [(("1", "2"), ("A",))]))
        service.submit("s", AddAnnotations(additions=((3, ""),)))
        service.submit("s", AddAnnotations.build([(5, "A")]))
        with pytest.raises(SessionError, match="event 2 of 3"):
            service.flush("s")
        assert service.pending("s") == 1
        service.flush("s")
        assert service.verify("s").equivalent

    def test_flush_failure_requeue_preserves_submission_order(self, service):
        """The unapplied remainder returns to the *front* of the queue
        in submission order, ahead of anything submitted meanwhile."""
        service.create("s", make_relation())
        poison = AddAnnotations.build([(999, "A")])
        tail = [AddAnnotations.build([(tid, "A")]) for tid in (3, 5, 6)]
        service.submit("s", poison)
        for event in tail:
            service.submit("s", event)
        with pytest.raises(SessionError, match="event 1 of 4"):
            service.flush("s")
        late = AddAnnotations.build([(0, "B")])
        service.submit("s", late)
        hosted = service._session("s")
        with hosted.queue_lock:
            assert list(hosted.queue) == tail + [late]
        # Draining the re-queued remainder works and verifies clean.
        service.flush("s")
        assert service.pending("s") == 0
        assert service.verify("s").equivalent

    def test_threaded_flushes_bump_revision_once_per_nonempty_flush(self):
        """However many events a flush drains, it bumps the revision
        exactly once; concurrent submitters never add extra bumps."""
        service = CorrelationService(config=CONFIG)
        service.create("s", make_relation())
        hosted = service._session("s")
        batches: list[int] = []
        batch_lock = threading.Lock()
        real_apply_batch = hosted.engine.apply_batch

        def recording_apply_batch(events):
            with batch_lock:
                batches.append(len(events))
            return real_apply_batch(events)

        hosted.engine.apply_batch = recording_apply_batch
        stop = threading.Event()
        submitted = []

        def writer(offset):
            for index in range(8):
                event = AddAnnotations.build([(offset, "A")])
                service.submit("s", event)
                submitted.append(event)

        def flusher():
            while not stop.is_set():
                service.flush("s")

        writers = [threading.Thread(target=writer, args=(tid,))
                   for tid in (0, 3, 5)]
        background = threading.Thread(target=flusher)
        background.start()
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join(timeout=10)
        stop.set()
        background.join(timeout=10)
        service.flush("s")   # drain any unflushed tail

        assert service.pending("s") == 0
        assert sum(batches) == len(submitted) == 24
        # create() bumped once; each non-empty flush exactly once more.
        assert service.snapshot("s").revision == 1 + len(batches)
        assert service.verify("s").equivalent

    def test_failed_create_does_not_squat_the_name(self, service):
        with pytest.raises(MiningError):
            service.create("s", make_relation(),
                           CONFIG.replace(backend="no-such-backend"))
        assert service.sessions() == ()
        service.create("s", make_relation())
        assert service.sessions() == ("s",)

    def test_rules_query_by_kind(self, service):
        service.create("s", make_relation())
        for rule in service.rules("s", RuleKind.DATA_TO_ANNOTATION):
            assert rule.kind is RuleKind.DATA_TO_ANNOTATION


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        entered = threading.Event()
        release = threading.Event()
        writer_done = threading.Event()

        def slow_reader():
            with lock.read():
                entered.set()
                release.wait(timeout=5)

        def writer():
            with lock.write():
                writer_done.set()

        reader_thread = threading.Thread(target=slow_reader)
        reader_thread.start()
        assert entered.wait(timeout=5)
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        time.sleep(0.05)
        assert not writer_done.is_set(), "writer entered alongside a reader"
        release.set()
        assert writer_done.wait(timeout=5)
        reader_thread.join(timeout=5)
        writer_thread.join(timeout=5)

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        first_reader_in = threading.Event()
        first_reader_release = threading.Event()
        second_reader_in = threading.Event()
        writer_in = threading.Event()

        def first_reader():
            with lock.read():
                first_reader_in.set()
                first_reader_release.wait(timeout=5)

        def writer():
            with lock.write():
                writer_in.set()

        def second_reader():
            with lock.read():
                second_reader_in.set()

        threads = [threading.Thread(target=first_reader)]
        threads[0].start()
        assert first_reader_in.wait(timeout=5)
        threads.append(threading.Thread(target=writer))
        threads[1].start()
        time.sleep(0.05)  # let the writer start waiting
        threads.append(threading.Thread(target=second_reader))
        threads[2].start()
        time.sleep(0.05)
        assert not second_reader_in.is_set(), "reader overtook waiting writer"
        first_reader_release.set()
        assert writer_in.wait(timeout=5)
        assert second_reader_in.wait(timeout=5)
        for thread in threads:
            thread.join(timeout=5)


class TestConcurrentReadsDuringFlush:
    def test_snapshots_stay_consistent_under_concurrent_flushes(self):
        """Readers hammering snapshot() while a writer queues and
        flushes batches must only ever observe whole rule sets."""
        service = CorrelationService(config=CONFIG)
        service.create("hot", make_relation())
        stop = threading.Event()
        failures: list[str] = []
        observed_revisions: list[int] = []

        def reader():
            revisions = []
            while not stop.is_set():
                snap = service.snapshot("hot")
                # Signature must be derived from exactly the rules in
                # the snapshot — a torn read would break this pairing.
                expected = frozenset(snap.signature)
                if len(expected) != len(snap.rules):
                    failures.append(
                        f"torn snapshot: {len(snap.rules)} rules vs "
                        f"{len(expected)} signature entries")
                    return
                revisions.append(snap.revision)
            if revisions != sorted(revisions):
                failures.append("revision went backwards for a reader")
            observed_revisions.extend(revisions)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for wave in range(5):
                service.submit("hot", AddAnnotations.build([(3, "A")]))
                service.submit("hot", AddAnnotatedTuples.build(
                    [(("1", "2"), ("A",))]))
                service.flush("hot")
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=10)

        assert not failures, failures
        assert service.snapshot("hot").revision == 6
        assert service.verify("hot").equivalent
        assert max(observed_revisions, default=0) <= 6


class TestSnapshotMemoization:
    """The serving read path: unchanged-revision reads copy nothing."""

    def test_same_revision_snapshot_is_the_same_object(self, service):
        service.create("main", make_relation())
        first = service.snapshot("main")
        assert service.snapshot("main") is first
        assert service.snapshot("main") is first

    def test_pending_change_shares_rules_and_catalog(self, service):
        service.create("main", make_relation())
        first = service.snapshot("main")
        service.submit("main", AddAnnotations.build([(3, "A")]))
        second = service.snapshot("main")
        assert second is not first
        assert second.pending_events == 1
        # Same revision: the heavy parts are shared, never re-copied.
        assert second.rules is first.rules
        assert second.catalog is first.catalog
        assert second.signature is first.signature

    def test_flush_invalidates_the_cached_snapshot(self, service):
        service.create("main", make_relation())
        before = service.snapshot("main")
        service.submit("main", AddAnnotations.build([(3, "A")]))
        service.flush("main")
        after = service.snapshot("main")
        assert after is not before
        assert after.revision == before.revision + 1
        assert after.catalog is not before.catalog
        assert service.snapshot("main") is after

    def test_snapshot_serves_catalog_queries(self, service):
        snap = service.create("main", make_relation())
        assert snap.catalog is not None
        top = snap.query().top(3, by="lift")
        assert len(top) == min(3, len(snap))
        assert snap.of_kind(RuleKind.DATA_TO_ANNOTATION) == \
            snap.catalog.of_kind(RuleKind.DATA_TO_ANNOTATION)


class TestServiceQueries:
    def test_catalog_is_stable_across_reads(self, service):
        service.create("main", make_relation())
        catalog = service.catalog("main")
        assert service.catalog("main") is catalog
        assert service.query("main").all() == catalog.rules

    def test_top_rules_matches_catalog_ordering(self, service):
        service.create("main", make_relation())
        catalog = service.catalog("main")
        assert service.top_rules("main", 2, by="support") == \
            catalog.top(2, by="support")
        narrowed = service.top_rules(
            "main", 2, by="confidence", kind=RuleKind.DATA_TO_ANNOTATION)
        assert all(r.kind is RuleKind.DATA_TO_ANNOTATION for r in narrowed)

    def test_unmined_session_has_no_catalog(self, service):
        service.create("raw", make_relation(), mine=False)
        with pytest.raises(SessionError, match="no mined rules"):
            service.catalog("raw")
        snap = service.snapshot("raw")
        assert snap.catalog is None
        with pytest.raises(SessionError, match="no mined rules"):
            snap.query()


class TestSnapshotCacheStaleness:
    def test_failed_remine_does_not_serve_stale_snapshots(
            self, service, monkeypatch):
        """A re-mine that replaces the rules and then dies in the
        invariant check bumps no revision — the cached snapshot must
        still be dropped, or readers see rules the engine no longer
        holds."""
        from repro.errors import MaintenanceError

        service.create("main", make_relation(),
                       config=EngineConfig(min_support=0.25,
                                           min_confidence=0.6,
                                           validate=True))
        stale = service.snapshot("main")
        engine = service._session("main").engine

        def boom(*args, **kwargs):
            raise MaintenanceError("forced validation failure")
        monkeypatch.setattr(engine.table, "check_invariants", boom)
        with pytest.raises(MaintenanceError, match="forced validation"):
            service.mine("main")
        monkeypatch.undo()

        snap = service.snapshot("main")
        assert snap is not stale
        assert snap.catalog is service.catalog("main")
        assert snap.rules == service.catalog("main").rules
        assert service.snapshot("main") is snap  # memo works again


class TestDropWithPending:
    def test_drop_refuses_when_events_are_queued(self, service):
        service.create("main", make_relation())
        service.submit("main", AddAnnotations.build([(0, "Z1")]))
        service.submit("main", AddAnnotations.build([(1, "Z1")]))
        with pytest.raises(SessionError,
                           match=r"has 2 queued event\(s\)"):
            service.drop("main")
        # The refusal left the session fully intact.
        assert service.sessions() == ("main",)
        assert service.pending("main") == 2

    def test_drop_force_discards_queued_events(self, service):
        service.create("main", make_relation())
        service.submit("main", AddAnnotations.build([(0, "Z1")]))
        service.drop("main", force=True)
        assert service.sessions() == ()

    def test_drop_after_flush_needs_no_force(self, service):
        service.create("main", make_relation())
        service.submit("main", AddAnnotations.build([(0, "Z1")]))
        service.flush("main")
        service.drop("main")
        assert service.sessions() == ()


class TestServiceIntrospection:
    def test_vocabulary_is_the_engine_vocabulary(self, service):
        service.create("main", make_relation())
        vocabulary = service.vocabulary("main")
        assert vocabulary is service._session("main").engine.vocabulary

    def test_config_of_returns_the_effective_config(self, service):
        service.create("main", make_relation())
        assert service.config_of("main") is CONFIG
        override = CONFIG.replace(backend="eclat")
        service.create("other", make_relation(), override)
        assert service.config_of("other") is override

    def test_log_status_reports_rotation(self, service):
        service.create("main", make_relation(),
                       CONFIG.replace(max_log_events=2))
        for tid in range(3):
            service.submit("main", AddAnnotations.build([(tid, "Z1")]))
        with pytest.warns(RuntimeWarning, match="EventLog rotating"):
            service.flush("main")
        status = service.log_status("main")
        assert status == {"log_events": 2, "log_dropped": 1,
                          "log_complete": False}


class TestServiceInstrumentation:
    def test_flush_and_snapshot_metrics_are_fed(self):
        from repro.server.metrics import ServiceInstrumentation

        bundle = ServiceInstrumentation()
        service = CorrelationService(config=CONFIG,
                                     instrumentation=bundle)
        service.create("main", make_relation())
        assert bundle.snapshot_misses.value >= 1

        service.submit("main", AddAnnotations.build([(0, "Z1")]))
        service.submit("main", AddAnnotations.build([(1, "Z1")]))
        assert bundle.submitted_events.value == 2

        service.flush("main")
        assert bundle.flush_batches.value == 1
        assert bundle.flushed_events.value == 2
        assert bundle.flush_seconds.count == 1
        assert bundle.flush_failures.value == 0

        service.snapshot("main")
        hits_before = bundle.snapshot_hits.value
        service.snapshot("main")  # unchanged revision → memo hit
        assert bundle.snapshot_hits.value > hits_before

    def test_empty_flush_records_no_batch(self):
        from repro.server.metrics import ServiceInstrumentation

        bundle = ServiceInstrumentation()
        service = CorrelationService(config=CONFIG,
                                     instrumentation=bundle)
        service.create("main", make_relation())
        service.flush("main")
        assert bundle.flush_batches.value == 0

    def test_uninstrumented_service_still_works(self, service):
        service.create("main", make_relation())
        service.submit("main", AddAnnotations.build([(0, "Z1")]))
        assert service.flush("main").events == 1

    def test_phase_timings_reach_the_registry(self):
        from repro.server.metrics import ServiceInstrumentation

        bundle = ServiceInstrumentation()
        service = CorrelationService(config=CONFIG,
                                     instrumentation=bundle)
        service.create("main", make_relation())
        service.submit("main", AddAnnotations.build([(0, "Z1")]))
        service.flush("main")
        service.mine("main")
        rendered = bundle.registry.render()
        series = rendered["service_phase_seconds"]["series"]
        # Flush and mine both report; apply/refresh come from the
        # monolithic engine's batch path, mine/refresh from mine().
        assert "phase=refresh" in series
        assert series["phase=refresh"]["count"] >= 2

"""Unit tests for the application session."""

import pytest

from repro.app.session import Session
from repro.core.rules import RuleKind
from repro.errors import SessionError

DATASET = """\
1 2 Annot_1
1 3 Annot_1 Annot_2
1 2 Annot_1
4 2
1 3 Annot_1 Annot_2
4 3 Annot_2
1 5 Annot_1
4 5
"""

GENERALIZATIONS = """\
Concept_X <= Annot_1 | Annot_2
"""

UPDATES = "3: Annot_1\n7: Annot_2\n"

ANNOTATED_TUPLES = "1 2 Annot_1\n9 9 Annot_3\n"

UNANNOTATED_TUPLES = "6 7\n8 9\n"


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, content in [
        ("data.txt", DATASET),
        ("gen.txt", GENERALIZATIONS),
        ("updates.txt", UPDATES),
        ("annotated.txt", ANNOTATED_TUPLES),
        ("unannotated.txt", UNANNOTATED_TUPLES),
    ]:
        path = tmp_path / name
        path.write_text(content)
        paths[name] = path
    return paths


@pytest.fixture
def session(files):
    session = Session()
    session.load_dataset(files["data.txt"])
    return session


class TestTransitions:
    def test_mine_before_load_rejected(self):
        with pytest.raises(SessionError):
            Session().mine(0.3, 0.7)

    def test_updates_before_mine_rejected(self, session, files):
        with pytest.raises(SessionError):
            session.add_annotations_from_file(files["updates.txt"])

    def test_load_resets_manager(self, session, files):
        session.mine(0.3, 0.7)
        session.load_dataset(files["data.txt"])
        with pytest.raises(SessionError):
            session.write_rules("unused.txt")


class TestMining:
    def test_load_and_mine(self, session):
        report = session.mine(0.25, 0.6)
        assert report.event == "mine"
        assert session.rules_of_kind(RuleKind.DATA_TO_ANNOTATION)
        assert session.rules_of_kind(RuleKind.ANNOTATION_TO_ANNOTATION)

    def test_rules_sorted_by_confidence(self, session):
        session.mine(0.25, 0.6)
        rules = session.rules_of_kind(RuleKind.DATA_TO_ANNOTATION)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_remine_with_new_thresholds(self, session):
        session.mine(0.25, 0.6)
        loose = len(session.manager.rules)
        session.mine(0.5, 0.9)
        strict = len(session.manager.rules)
        assert strict <= loose


class TestUpdates:
    def test_annotation_updates(self, session, files):
        session.mine(0.25, 0.6)
        report = session.add_annotations_from_file(files["updates.txt"])
        assert report.event == "add-annotations"
        assert session.manager.relation.tuple(3).has_annotation("Annot_1")

    def test_annotated_tuples(self, session, files):
        session.mine(0.25, 0.6)
        report = session.add_annotated_tuples_from_file(
            files["annotated.txt"])
        assert report.event == "add-annotated-tuples"
        assert session.manager.db_size == 10

    def test_unannotated_tuples(self, session, files):
        session.mine(0.25, 0.6)
        report = session.add_unannotated_tuples_from_file(
            files["unannotated.txt"])
        assert report.event == "add-unannotated-tuples"

    def test_annotated_rows_in_unannotated_file_rejected(self, session,
                                                         files):
        session.mine(0.25, 0.6)
        with pytest.raises(SessionError):
            session.add_unannotated_tuples_from_file(files["annotated.txt"])

    def test_empty_update_file_rejected(self, session, tmp_path):
        session.mine(0.25, 0.6)
        empty = tmp_path / "empty.txt"
        empty.write_text("# nothing\n")
        with pytest.raises(SessionError):
            session.add_annotated_tuples_from_file(empty)


class TestGeneralization:
    def test_load_generalizations_resets_mining(self, session, files):
        session.mine(0.25, 0.6)
        count = session.load_generalizations(files["gen.txt"])
        assert count == 1
        with pytest.raises(SessionError):
            session.write_rules("unused.txt")
        session.mine(0.25, 0.6)
        tokens = {
            session.manager.vocabulary.item(rule.rhs).token
            for rule in session.manager.rules
        }
        assert "Concept_X" in tokens


class TestOutputs:
    def test_write_rules(self, session, tmp_path):
        session.mine(0.25, 0.6)
        out = tmp_path / "rules.txt"
        written = session.write_rules(out)
        assert written == len(session.manager.rules)
        assert out.read_text().count("==>") == written

    def test_write_rules_by_kind(self, session, tmp_path):
        session.mine(0.25, 0.6)
        out = tmp_path / "d2a.txt"
        written = session.write_rules(out, kind=RuleKind.DATA_TO_ANNOTATION)
        assert written == len(session.rules_of_kind(
            RuleKind.DATA_TO_ANNOTATION))

    def test_recommendations(self, session):
        session.mine(0.25, 0.6)
        recommendations = session.recommendations(limit=5)
        assert len(recommendations) <= 5

    def test_status_progression(self, session):
        status = session.status()
        assert status["mined"] is False and status["tuples"] == 8
        session.mine(0.25, 0.6)
        status = session.status()
        assert status["mined"] is True
        assert status["rules"] == status["d2a_rules"] + status["a2a_rules"]


class TestRuleQueries:
    """Menu options 17/18 behind the session API: catalog-served."""

    @pytest.fixture
    def mined(self, session):
        session.mine(0.25, 0.6)
        return session

    def test_catalog_memoized_until_update(self, mined, files):
        catalog = mined.catalog()
        assert mined.catalog() is catalog
        mined.add_annotations_from_file(files["updates.txt"])
        assert mined.catalog() is not catalog

    def test_top_rules_ordering(self, mined):
        top = mined.top_rules(3, by="confidence")
        assert len(top) == 3
        assert top[0].confidence >= top[1].confidence >= top[2].confidence
        by_lift = mined.top_rules(2, by="lift")
        assert by_lift == list(mined.catalog().top(2, by="lift"))

    def test_rules_page_partitions_the_listing(self, mined):
        total = len(mined.manager.rules)
        pages = []
        offset = 0
        while True:
            page = mined.rules_page(offset=offset, limit=2, by="support")
            if not page:
                break
            pages.extend(page)
            offset += 2
        assert len(pages) == total
        assert pages == list(mined.catalog().ordered_by("support"))

    def test_rules_for_annotation(self, mined):
        rules = mined.rules_for_annotation("Annot_1")
        assert rules
        annot_1 = mined.manager.vocabulary.find_annotation("Annot_1")
        assert all(rule.rhs == annot_1 for rule in rules)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)
        assert mined.rules_for_annotation("Annot_1", limit=1) == rules[:1]
        assert mined.rules_for_annotation("NoSuchAnnotation") == []
        assert mined.rules_for_annotation("") == []

    def test_queries_require_a_mined_manager(self, session):
        with pytest.raises(SessionError):
            session.top_rules(3)
        with pytest.raises(SessionError):
            session.rules_for_annotation("Annot_1")

    def test_status_reports_revision(self, mined, files):
        assert mined.status()["revision"] == 1
        mined.add_annotations_from_file(files["updates.txt"])
        assert mined.status()["revision"] == 2

    def test_rules_for_a_generalization_label(self, session, files):
        from repro.mining.itemsets import Item, ItemKind

        session.load_generalizations(files["gen.txt"])
        session.mine(0.25, 0.6)
        rules = session.rules_for_annotation("Concept_X")
        assert rules, "expected rules predicting the label"
        label_id = session.manager.vocabulary.id_of(
            Item(ItemKind.LABEL, "Concept_X"))
        assert all(rule.rhs == label_id for rule in rules)

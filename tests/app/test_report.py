"""Unit tests for the application text reports."""

from repro.app.report import (
    candidates_report,
    history_report,
    maintenance_report_line,
    rules_report,
    table_report,
)
from repro.core.maintenance import MaintenanceReport


class TestRulesReport:
    def test_groups_by_kind(self, mined_manager):
        text = rules_report(mined_manager)
        assert "data-to-annotation" in text
        assert "annotation-to-annotation" in text
        assert "==>" in text

    def test_limit(self, mined_manager):
        text = rules_report(mined_manager, limit=1)
        assert text.count("==>") <= 2  # one per kind

    def test_compressed_not_longer(self, mined_manager):
        full = rules_report(mined_manager)
        compressed = rules_report(mined_manager, compress=True)
        assert compressed.count("==>") <= full.count("==>")


class TestCandidatesReport:
    def test_mentions_band_and_gaps(self, mined_manager):
        text = candidates_report(mined_manager)
        if len(mined_manager.candidates):
            assert "margin band" in text
            assert "needs +" in text
        else:
            assert "no candidate rules" in text

    def test_empty_store(self, mined_manager):
        mined_manager.candidates.refresh([], promoted_keys=[], demoted=[])
        assert "no candidate rules" in candidates_report(mined_manager)


class TestTableReport:
    def test_counts_and_frequencies(self, mined_manager):
        text = table_report(mined_manager)
        assert "pattern table:" in text
        assert f"database size: {mined_manager.db_size}" in text
        assert "most frequent annotations:" in text


class TestHistory:
    def test_line_format(self):
        report = MaintenanceReport(event="add-annotations", db_size=42)
        line = maintenance_report_line(report)
        assert "add-annotations" in line
        assert "db=42" in line

    def test_empty_history(self):
        assert "no maintenance activity" in history_report([])

    def test_block_has_header_and_rows(self):
        reports = [MaintenanceReport(event="mine", db_size=10),
                   MaintenanceReport(event="add-annotations", db_size=10)]
        text = history_report(reports)
        lines = text.splitlines()
        assert len(lines) == 3
        assert "event" in lines[0]

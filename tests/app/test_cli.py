"""End-to-end tests for the menu CLI (paper Figure 5 flow)."""

import pytest

from repro.app.cli import CommandLoop, main
from tests.app.test_session import (  # reuse the fixture corpus
    ANNOTATED_TUPLES,
    DATASET,
    GENERALIZATIONS,
    UNANNOTATED_TUPLES,
    UPDATES,
)


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, content in [
        ("data.txt", DATASET),
        ("gen.txt", GENERALIZATIONS),
        ("updates.txt", UPDATES),
        ("annotated.txt", ANNOTATED_TUPLES),
        ("unannotated.txt", UNANNOTATED_TUPLES),
    ]:
        path = tmp_path / name
        path.write_text(content)
        paths[name] = str(path)
    return paths


def run_cli(files, answers, **loop_kwargs):
    """Drive the loop with scripted answers; returns printed lines."""
    answers = iter(answers)
    output = []
    loop = CommandLoop(lambda prompt: next(answers, "0"),
                       output.append, **loop_kwargs)
    code = loop.run(files["data.txt"])
    return code, output


class TestMenuFlow:
    def test_mine_d2a_and_exit(self, files):
        code, output = run_cli(files, ["1", "0.25", "0.6", "0"])
        text = "\n".join(str(line) for line in output)
        assert code == 0
        assert "Loaded 8 tuples" in text
        assert "data-to-annotation rule(s)" in text
        assert "==>" in text

    def test_mine_a2a(self, files):
        code, output = run_cli(files, ["2", "0.25", "0.6", "0"])
        text = "\n".join(str(line) for line in output)
        assert "annotation-to-annotation rule(s)" in text

    def test_full_update_cycle(self, files, tmp_path):
        rules_out = str(tmp_path / "rules_out.txt")
        code, output = run_cli(files, [
            "1", "0.25", "0.6",
            "4", files["updates.txt"],
            "5", files["annotated.txt"],
            "6", files["unannotated.txt"],
            "8", rules_out,
            "9",
            "0",
        ])
        text = "\n".join(str(line) for line in output)
        assert code == 0
        assert "add-annotations" in text
        assert "add-annotated-tuples" in text
        assert "add-unannotated-tuples" in text
        assert "Wrote" in text
        assert "mined: True" in text

    def test_generalizations_option(self, files):
        code, output = run_cli(files, [
            "3", files["gen.txt"],
            "1", "0.25", "0.6",
            "0",
        ])
        text = "\n".join(str(line) for line in output)
        assert "generalization rule(s)" in text

    def test_recommendations_option(self, files):
        code, output = run_cli(files, [
            "1", "0.25", "0.6",
            "7", "5",
            "0",
        ])
        text = "\n".join(str(line) for line in output)
        assert "recommendation" in text.lower()

    def test_errors_are_reported_not_fatal(self, files):
        code, output = run_cli(files, [
            "4", "does/not/exist.txt",   # update before mining
            "1", "not-a-number", "0.6",  # bad threshold
            "42",                         # unknown option
            "0",
        ])
        text = "\n".join(str(line) for line in output)
        assert code == 0
        assert "Error:" in text
        assert "Unknown option" in text

    def test_exhausted_script_exits_cleanly(self, files):
        code, _ = run_cli(files, ["1", "0.25", "0.6"])
        assert code == 0


class TestExtendedMenu:
    def test_compressed_rules_option(self, files):
        code, output = run_cli(files, [
            "1", "0.25", "0.6",
            "10",
            "0",
        ])
        text = "\n".join(str(line) for line in output)
        assert "data-to-annotation" in text

    def test_candidates_option(self, files):
        code, output = run_cli(files, [
            "1", "0.25", "0.6",
            "11",
            "0",
        ])
        text = "\n".join(str(line) for line in output)
        assert "candidate rules" in text or "margin band" in text

    def test_options_10_to_12_require_mining(self, files):
        code, output = run_cli(files, ["10", "11", "12", "0"])
        text = "\n".join(str(line) for line in output)
        assert text.count("Error: no rules mined yet") == 3

    def test_explain_rule_option(self, files):
        code, output = run_cli(files, [
            "1", "0.25", "0.6",
            "14", "1",
            "0",
        ])
        text = "\n".join(str(line) for line in output)
        assert "lift" in text
        assert "supports tid=" in text

    def test_explain_rule_bad_number(self, files):
        code, output = run_cli(files, [
            "1", "0.25", "0.6",
            "14", "999",
            "0",
        ])
        text = "\n".join(str(line) for line in output)
        assert "out of range" in text

    def test_save_and_load_snapshot(self, files, tmp_path):
        state = str(tmp_path / "state.json")
        code, output = run_cli(files, [
            "1", "0.25", "0.6",
            "12", state,
            "13", state,
            "9",
            "0",
        ])
        text = "\n".join(str(line) for line in output)
        assert code == 0
        assert "Saved session state" in text
        assert "Restored 8 tuples" in text
        assert "mined: True" in text


class TestBatchedUpdates:
    def run_batched(self, files, answers, auto_flush_every):
        answers = iter(answers)
        output = []
        loop = CommandLoop(lambda prompt: next(answers, "0"),
                           output.append,
                           auto_flush_every=auto_flush_every)
        code = loop.run(files["data.txt"])
        return code, output

    def test_updates_queue_until_threshold_then_flush_inline(self, files):
        code, output = self.run_batched(files, [
            "1", "0.25", "0.6",
            "4", files["updates.txt"],      # queued (depth 1)
            "5", files["annotated.txt"],    # depth 2: coalesced flush
            "0",
        ], auto_flush_every=2)
        text = "\n".join(str(line) for line in output)
        assert code == 0
        assert "Queued (1 pending" in text
        assert "batch of 2 event(s)" in text

    def test_flush_menu_action_drains_the_queue(self, files):
        code, output = self.run_batched(files, [
            "1", "0.25", "0.6",
            "4", files["updates.txt"],
            "16",                            # explicit flush
            "16",                            # nothing left
            "0",
        ], auto_flush_every=10)
        text = "\n".join(str(line) for line in output)
        assert code == 0
        assert "batch of 1 event(s)" in text
        assert "No updates queued." in text

    def test_poison_update_keeps_valid_prefix_and_tail(self, files,
                                                       tmp_path):
        """A queued update referencing an unknown tuple is isolated:
        the valid updates before it apply, the tail stays queued."""
        poison = tmp_path / "poison.txt"
        poison.write_text("9999: Annot_9\n")
        code, output = self.run_batched(files, [
            "1", "0.25", "0.6",
            "4", files["updates.txt"],      # valid, queued
            "4", str(poison),               # poison, queued
            "4", files["updates.txt"],      # valid, queued
            "16",                            # flush: poison isolated
            "9",
            "0",
        ], auto_flush_every=10)
        text = "\n".join(str(line) for line in output)
        assert code == 0
        assert "failed on update 2 of 3" in text
        assert "1 applied, 1 re-queued" in text
        assert "pending_updates: 1" in text

    def test_status_reports_queue_depth(self, files):
        code, output = self.run_batched(files, [
            "1", "0.25", "0.6",
            "4", files["updates.txt"],
            "9",
            "0",
        ], auto_flush_every=5)
        text = "\n".join(str(line) for line in output)
        assert "pending_updates: 1" in text
        assert "auto_flush_every: 5" in text


class TestMainEntryPoint:
    def test_main_with_commands_file(self, files, tmp_path, capsys):
        script = tmp_path / "ops.txt"
        script.write_text("1\n0.25\n0.6\n0\n")
        code = main([files["data.txt"], "--commands", str(script)])
        captured = capsys.readouterr()
        assert code == 0
        assert "==>" in captured.out

    def test_main_accepts_auto_flush_every(self, files, tmp_path, capsys):
        script = tmp_path / "ops.txt"
        script.write_text("1\n0.25\n0.6\n"
                          f"4\n{files['updates.txt']}\n16\n0\n")
        code = main([files["data.txt"], "--commands", str(script),
                     "--auto-flush-every", "8"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Queued (1 pending" in captured.out
        assert "batch of 1 event(s)" in captured.out

    def test_main_bad_auto_flush_fails_gracefully(self, files, tmp_path,
                                                  capsys):
        script = tmp_path / "ops.txt"
        script.write_text("0\n")
        code = main([files["data.txt"], "--commands", str(script),
                     "--auto-flush-every", "0"])
        captured = capsys.readouterr()
        assert code == 1
        assert "auto_flush_every" in captured.err

    def test_main_missing_dataset_fails_gracefully(self, tmp_path, capsys):
        script = tmp_path / "ops.txt"
        script.write_text("0\n")
        code = main(["/no/such/dataset.txt", "--commands", str(script)])
        captured = capsys.readouterr()
        assert code == 1
        assert "fatal:" in captured.err

    def test_main_accepts_shards(self, files, tmp_path, capsys):
        script = tmp_path / "ops.txt"
        script.write_text("1\n0.25\n0.6\n9\n0\n")
        code = main([files["data.txt"], "--commands", str(script),
                     "--shards", "3"])
        captured = capsys.readouterr()
        assert code == 0
        assert "==>" in captured.out
        assert "shards: 3" in captured.out  # status (option 9)

    def test_main_rejects_bad_shards(self, files, tmp_path, capsys):
        script = tmp_path / "ops.txt"
        script.write_text("0\n")
        with pytest.raises(SystemExit):
            main([files["data.txt"], "--commands", str(script),
                  "--shards", "0"])
        assert "--shards must be >= 1" in capsys.readouterr().err


class TestShardedMenuFlow:
    """The full menu drives a sharded manager like a monolithic one."""

    def test_mine_update_recommend_explain_sharded(self, files, tmp_path):
        rules_out = str(tmp_path / "rules_out.txt")
        code, output = run_cli(files, [
            "1", "0.25", "0.6",
            "4", files["updates.txt"],
            "7", "5",
            "14", "1",
            "15",
            "8", rules_out,
            "0",
        ], shards=2)
        text = "\n".join(str(line) for line in output)
        assert code == 0
        assert "data-to-annotation rule(s)" in text
        assert "add-annotations" in text
        assert "lift" in text  # explain served through the shard views
        # The written rule file matches a monolithic session's output.
        _, mono_output = run_cli(files, [
            "1", "0.25", "0.6",
            "4", files["updates.txt"],
            "8", rules_out + ".mono",
            "0",
        ])
        sharded_rules = sorted(open(rules_out).read().splitlines())
        mono_rules = sorted(open(rules_out + ".mono").read().splitlines())
        assert sharded_rules == mono_rules

    def test_snapshot_round_trip_sharded(self, files, tmp_path):
        snap = str(tmp_path / "state.json")
        code, output = run_cli(files, [
            "1", "0.25", "0.6",
            "12", snap,
            "13", snap,
            "9",
            "0",
        ], shards=3)
        text = "\n".join(str(line) for line in output)
        assert code == 0
        assert f"Saved session state to {snap}" in text
        assert "Restored 8 tuples" in text


class TestQueryCommands:
    def test_top_rules_paged(self, files):
        code, output = run_cli(files, [
            "1", "0.25", "0.6",
            "17", "confidence", "2", "1",
            "17", "confidence", "2", "2",
            "0",
        ])
        text = "\n".join(str(line) for line in output)
        assert code == 0
        assert "Rules 1..2 of" in text
        assert "Rules 3..4 of" in text
        assert "[confidence" in text

    def test_top_rules_defaults_and_bad_metric(self, files):
        code, output = run_cli(files, [
            "1", "0.25", "0.6",
            "17", "", "", "",
            "17", "coolness", "5", "1",
            "17", "canonical", "5", "1",
            "0",
        ])
        text = "\n".join(str(line) for line in output)
        assert "best confidence first" in text
        assert "Error: unknown ordering metric 'coolness'" in text
        # "canonical" is a query ordering but not a rule statistic —
        # the menu must reject it instead of crashing on display.
        assert "Error: unknown ordering metric 'canonical'" in text

    def test_top_rules_empty_page(self, files):
        code, output = run_cli(files, [
            "1", "0.25", "0.6",
            "17", "lift", "10", "99",
            "17", "lift", "2", "1",
            "0",
        ])
        text = "\n".join(str(line) for line in output)
        assert "No rules on page 99" in text
        assert "[lift" in text  # rows annotate the sorted metric

    def test_rules_predicting_an_annotation(self, files):
        code, output = run_cli(files, [
            "1", "0.25", "0.6",
            "18", "Annot_1",
            "18", "Nope",
            "0",
        ])
        text = "\n".join(str(line) for line in output)
        assert "rule(s) predict 'Annot_1'" in text
        assert "==> Annot_1" in text
        assert "No rules predict 'Nope'" in text

    def test_query_commands_need_mined_rules(self, files):
        code, output = run_cli(files, ["17", "0"])
        text = "\n".join(str(line) for line in output)
        assert "Error: no rules mined yet" in text

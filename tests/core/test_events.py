"""Unit tests for update events."""

import warnings

import pytest

from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
    EventLog,
    RemoveAnnotations,
    RemoveTuples,
)
from repro.errors import MaintenanceError


class TestAddAnnotatedTuples:
    def test_build_normalizes(self):
        event = AddAnnotatedTuples.build([((1, 2), ["A", "A"])])
        assert event.rows == ((("1", "2"), frozenset({"A"})),)

    def test_empty_rejected(self):
        with pytest.raises(MaintenanceError):
            AddAnnotatedTuples(())


class TestAddUnannotatedTuples:
    def test_build(self):
        event = AddUnannotatedTuples.build([(1, 2), ("3",)])
        assert event.rows == (("1", "2"), ("3",))

    def test_empty_rejected(self):
        with pytest.raises(MaintenanceError):
            AddUnannotatedTuples(())


class TestAddAnnotations:
    def test_build_dedupes_preserving_order(self):
        event = AddAnnotations.build([(1, "A"), (2, "B"), (1, "A")])
        assert event.additions == ((1, "A"), (2, "B"))

    def test_by_tid_groups(self):
        event = AddAnnotations.build([(1, "A"), (2, "B"), (1, "C")])
        assert event.by_tid() == {1: ["A", "C"], 2: ["B"]}

    def test_empty_rejected(self):
        with pytest.raises(MaintenanceError):
            AddAnnotations(())


class TestRemovals:
    def test_remove_annotations_build(self):
        event = RemoveAnnotations.build([(0, "A"), (0, "A"), (1, "B")])
        assert event.removals == ((0, "A"), (1, "B"))
        assert event.by_tid() == {0: ["A"], 1: ["B"]}

    def test_remove_tuples_build_dedupes(self):
        event = RemoveTuples.build([3, 1, 3])
        assert event.tids == (3, 1)

    def test_empty_rejected(self):
        with pytest.raises(MaintenanceError):
            RemoveTuples(())
        with pytest.raises(MaintenanceError):
            RemoveAnnotations(())


class TestEventLog:
    def test_record_and_iterate(self):
        log = EventLog()
        first = AddAnnotations.build([(0, "A")])
        second = RemoveTuples.build([0])
        log.record(first)
        log.record(second)
        assert len(log) == 2
        assert list(log) == [first, second]

    def test_unbounded_by_default(self):
        log = EventLog()
        for tid in range(100):
            log.record(AddAnnotations.build([(tid, "A")]))
        assert len(log) == 100
        assert log.dropped == 0 and log.complete

    def test_bounded_log_rotates_oldest_first(self):
        log = EventLog(max_events=3)
        events = [AddAnnotations.build([(tid, "A")]) for tid in range(5)]
        with pytest.warns(RuntimeWarning, match="EventLog rotating"):
            for event in events:
                log.record(event)
        assert len(log) == 3
        assert list(log) == events[2:]
        assert log.dropped == 2
        assert not log.complete

    def test_bad_bound_rejected(self):
        with pytest.raises(MaintenanceError):
            EventLog(max_events=0)

    def test_preseeded_overflow_counts_as_dropped(self):
        events = [AddAnnotations.build([(tid, "A")]) for tid in range(5)]
        with pytest.warns(RuntimeWarning, match="EventLog rotating"):
            log = EventLog(events=list(events), max_events=3)
        assert list(log) == events[2:]
        assert log.dropped == 2 and not log.complete


class TestEventLogRotationWarning:
    def test_first_drop_warns_once(self):
        log = EventLog(max_events=2)
        log.record(AddAnnotations.build([(0, "A")]))
        log.record(AddAnnotations.build([(1, "A")]))
        with pytest.warns(RuntimeWarning, match="EventLog rotating"):
            log.record(AddAnnotations.build([(2, "A")]))
        # Later drops only bump the counter — no warning spam.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            log.record(AddAnnotations.build([(3, "A")]))
        assert log.dropped == 2

    def test_preseeded_overflow_warns(self):
        events = [AddAnnotations.build([(tid, "A")]) for tid in range(3)]
        with pytest.warns(RuntimeWarning, match="EventLog rotating"):
            EventLog(events=list(events), max_events=2)

    def test_unbounded_log_never_warns(self):
        log = EventLog()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for tid in range(50):
                log.record(AddAnnotations.build([(tid, "A")]))
        assert log.complete


class TestEngineExposesDrops:
    def test_log_dropped_surfaces_through_the_engine(self):
        from repro.core.config import EngineConfig
        from repro.core.engine import engine as build_engine
        from repro.relation.relation import AnnotatedRelation

        relation = AnnotatedRelation()
        for tid in range(4):
            relation.insert((str(tid), "x"), ("A1",))
        built = build_engine(relation, EngineConfig(
            min_support=0.25, min_confidence=0.6, max_log_events=2))
        built.mine()
        assert built.log_dropped == 0
        with pytest.warns(RuntimeWarning, match="EventLog rotating"):
            for tid in range(3):
                built.apply(AddAnnotations.build([(tid, "B1")]))
        assert built.log_dropped == 1
        assert not built.log.complete

"""The delta-plan compiler: coalescing, elision, provenance, poison."""

import pytest

from repro.core.deltas import compile_plan, event_label
from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
    RemoveAnnotations,
    RemoveTuples,
)
from repro.errors import DeltaPlanError


def compile_over(events, *, next_tid=10, dead=(), annotations=None):
    """Compile against a synthetic relation of ``next_tid`` tuples."""
    have = {} if annotations is None else dict(annotations)
    return compile_plan(
        events,
        next_tid=next_tid,
        is_live=lambda tid: 0 <= tid < next_tid and tid not in dead,
        annotations_of=lambda tid: frozenset(have.get(tid, ())),
    )


class TestPairCoalescing:
    def test_duplicate_adds_collapse(self):
        plan = compile_over([
            AddAnnotations.build([(1, "A")]),
            AddAnnotations.build([(1, "A"), (2, "B")]),
        ])
        assert plan.annotation_adds == {1: ["A"], 2: ["B"]}
        assert plan.stats.pairs_collapsed == 1

    def test_add_then_remove_of_absent_pair_cancels(self):
        plan = compile_over([
            AddAnnotations.build([(1, "A")]),
            RemoveAnnotations.build([(1, "A")]),
        ])
        assert plan.annotation_adds == {}
        assert plan.annotation_removes == {}
        assert plan.is_empty
        assert plan.stats.pairs_cancelled == 1

    def test_add_then_remove_of_present_pair_nets_to_remove(self):
        plan = compile_over([
            AddAnnotations.build([(1, "A")]),
            RemoveAnnotations.build([(1, "A")]),
        ], annotations={1: {"A"}})
        assert plan.annotation_adds == {}
        assert plan.annotation_removes == {1: ["A"]}

    def test_remove_then_add_of_present_pair_cancels(self):
        plan = compile_over([
            RemoveAnnotations.build([(1, "A")]),
            AddAnnotations.build([(1, "A")]),
        ], annotations={1: {"A"}})
        assert plan.is_empty

    def test_noop_add_of_present_pair_cancels(self):
        plan = compile_over([AddAnnotations.build([(1, "A")])],
                            annotations={1: {"A"}})
        assert plan.is_empty and plan.stats.pairs_cancelled == 1

    def test_noop_remove_of_absent_pair_cancels(self):
        plan = compile_over([RemoveAnnotations.build([(1, "A")])])
        assert plan.is_empty

    def test_without_oracle_last_op_is_kept(self):
        plan = compile_plan(
            [AddAnnotations.build([(1, "A")]),
             RemoveAnnotations.build([(1, "A")])],
            next_tid=10, is_live=lambda tid: True)
        # No pre-batch knowledge: the net remove is carried (a no-op
        # detach at apply time if the pair never existed).
        assert plan.annotation_removes == {1: ["A"]}


class TestInsertMerging:
    def test_inserts_merge_in_tid_order(self):
        plan = compile_over([
            AddAnnotatedTuples.build([(("1", "2"), ("A",))]),
            AddUnannotatedTuples.build([("3", "4"), ("5", "6")]),
        ])
        assert [planned.tid for planned in plan.inserts] == [10, 11, 12]
        assert plan.inserts[0].annotations == {"A"}
        assert plan.inserts[1].annotations == set()

    def test_annotations_fold_into_pending_insert(self):
        plan = compile_over([
            AddAnnotatedTuples.build([(("1", "2"), ("A",))]),
            AddAnnotations.build([(10, "B")]),
            RemoveAnnotations.build([(10, "A")]),
        ])
        assert plan.inserts[0].annotations == {"B"}
        assert plan.annotation_adds == {}
        assert plan.stats.pairs_folded_into_inserts == 2

    def test_insert_then_delete_is_elided(self):
        plan = compile_over([
            AddAnnotatedTuples.build([(("1", "2"), ("A",)),
                                      (("3", "4"), ("B",))]),
            RemoveTuples.build([10]),
        ])
        assert plan.inserts[0].elided and not plan.inserts[1].elided
        assert plan.deletions == []
        assert plan.stats.inserts_elided == 1
        assert [planned.tid for planned in plan.live_inserts()] == [11]

    def test_delete_squashes_prior_annotation_ops(self):
        plan = compile_over([
            AddAnnotations.build([(3, "A")]),
            RemoveTuples.build([3]),
        ])
        assert plan.annotation_adds == {}
        assert plan.deletions == [3]
        assert plan.stats.pairs_cancelled == 1


class TestPoisonDetection:
    def test_unknown_tid_rejected(self):
        with pytest.raises(DeltaPlanError, match="unknown tuple 99"):
            compile_over([AddAnnotations.build([(99, "A")])])

    def test_dead_tid_rejected(self):
        with pytest.raises(DeltaPlanError, match="does not exist or is"):
            compile_over([AddAnnotations.build([(4, "A")])], dead={4})

    def test_annotating_batch_deleted_tuple_rejected(self):
        with pytest.raises(DeltaPlanError, match="deleted"):
            compile_over([
                RemoveTuples.build([3]),
                AddAnnotations.build([(3, "A")]),
            ])

    def test_double_delete_rejected(self):
        with pytest.raises(DeltaPlanError, match="deleted"):
            compile_over([RemoveTuples.build([3]),
                          RemoveTuples.build([3])])

    def test_unknown_event_type_rejected(self):
        with pytest.raises(DeltaPlanError, match="unknown update event"):
            compile_plan(["not-an-event"], next_tid=1,
                         is_live=lambda tid: True)

    def test_empty_batch_rejected(self):
        with pytest.raises(DeltaPlanError, match="empty"):
            compile_plan([], next_tid=1, is_live=lambda tid: True)


class TestProvenance:
    def test_one_audit_row_per_event_in_order(self):
        events = [
            AddAnnotations.build([(1, "A"), (2, "B")]),
            AddAnnotatedTuples.build([(("1", "2"), ("A",))]),
            RemoveAnnotations.build([(1, "A")]),
        ]
        plan = compile_over(events)
        assert [audit.event for audit in plan.audits] == [
            "add-annotations", "add-annotated-tuples",
            "remove-annotations"]
        assert [audit.position for audit in plan.audits] == [1, 2, 3]
        assert plan.audits[0].payload == 2
        assert plan.events == tuple(events)
        assert "add-annotations" in plan.audits[0].summary()

    def test_event_label_rejects_unknown(self):
        with pytest.raises(DeltaPlanError):
            event_label(object())

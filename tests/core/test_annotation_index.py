"""Unit tests for the vertical index / annotation frequency table."""

import pytest

from repro.core.annotation_index import VerticalIndex
from repro.errors import MaintenanceError
from repro.mining.itemsets import ItemVocabulary


@pytest.fixture
def setup():
    vocabulary = ItemVocabulary()
    data_x = vocabulary.intern_data("x")
    data_y = vocabulary.intern_data("y")
    annotation_a = vocabulary.intern_annotation("A")
    index = VerticalIndex(vocabulary)
    index.add_transaction(0, frozenset({data_x, annotation_a}))
    index.add_transaction(1, frozenset({data_x, data_y}))
    index.add_transaction(2, frozenset({data_y, annotation_a}))
    return vocabulary, index, data_x, data_y, annotation_a


class TestMaintenance:
    def test_add_and_query(self, setup):
        _, index, data_x, data_y, annotation_a = setup
        assert index.tids(data_x) == {0, 1}
        assert index.frequency(annotation_a) == 2

    def test_extend(self, setup):
        _, index, data_x, _, annotation_a = setup
        index.extend_transaction(1, [annotation_a])
        assert index.tids(annotation_a) == {0, 1, 2}

    def test_shrink(self, setup):
        _, index, _, _, annotation_a = setup
        index.shrink_transaction(0, [annotation_a])
        assert index.tids(annotation_a) == {2}

    def test_shrink_missing_raises(self, setup):
        _, index, _, _, annotation_a = setup
        with pytest.raises(MaintenanceError):
            index.shrink_transaction(1, [annotation_a])

    def test_remove_transaction(self, setup):
        _, index, data_x, _, annotation_a = setup
        index.remove_transaction(0, frozenset({data_x, annotation_a}))
        assert index.tids(data_x) == {1}
        assert index.frequency(annotation_a) == 1


class TestQueries:
    def test_count_itemset(self, setup):
        _, index, data_x, data_y, annotation_a = setup
        assert index.count((data_x, annotation_a)) == 1
        assert index.count((data_x, data_y)) == 1
        assert index.count((), db_size=3) == 3

    def test_tids_of_itemset(self, setup):
        _, index, data_x, _, annotation_a = setup
        assert index.tids_of_itemset((data_x, annotation_a)) == {0}

    def test_frequent_items(self, setup):
        _, index, data_x, data_y, annotation_a = setup
        assert index.frequent_items(2) == sorted(
            [data_x, data_y, annotation_a])
        assert index.frequent_items(
            2, annotation_like_only=True) == [annotation_a]

    def test_annotation_frequencies(self, setup):
        vocabulary, index, _, _, annotation_a = setup
        assert index.annotation_frequencies() == {annotation_a: 2}

    def test_contains(self, setup):
        _, index, data_x, _, annotation_a = setup
        assert data_x in index
        index.shrink_transaction(0, [annotation_a])
        index.shrink_transaction(2, [annotation_a])
        assert annotation_a not in index

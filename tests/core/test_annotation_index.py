"""Unit tests for the vertical index / annotation frequency table."""

import pytest

from repro.core.annotation_index import VerticalIndex
from repro.errors import MaintenanceError
from repro.mining.itemsets import ItemVocabulary


@pytest.fixture
def setup():
    vocabulary = ItemVocabulary()
    data_x = vocabulary.intern_data("x")
    data_y = vocabulary.intern_data("y")
    annotation_a = vocabulary.intern_annotation("A")
    index = VerticalIndex(vocabulary)
    index.add_transaction(0, frozenset({data_x, annotation_a}))
    index.add_transaction(1, frozenset({data_x, data_y}))
    index.add_transaction(2, frozenset({data_y, annotation_a}))
    return vocabulary, index, data_x, data_y, annotation_a


class TestMaintenance:
    def test_add_and_query(self, setup):
        _, index, data_x, data_y, annotation_a = setup
        assert index.tids(data_x) == {0, 1}
        assert index.frequency(annotation_a) == 2

    def test_extend(self, setup):
        _, index, data_x, _, annotation_a = setup
        index.extend_transaction(1, [annotation_a])
        assert index.tids(annotation_a) == {0, 1, 2}

    def test_shrink(self, setup):
        _, index, _, _, annotation_a = setup
        index.shrink_transaction(0, [annotation_a])
        assert index.tids(annotation_a) == {2}

    def test_shrink_missing_raises(self, setup):
        _, index, _, _, annotation_a = setup
        with pytest.raises(MaintenanceError):
            index.shrink_transaction(1, [annotation_a])

    def test_remove_transaction(self, setup):
        _, index, data_x, _, annotation_a = setup
        index.remove_transaction(0, frozenset({data_x, annotation_a}))
        assert index.tids(data_x) == {1}
        assert index.frequency(annotation_a) == 1


class TestQueries:
    def test_count_itemset(self, setup):
        _, index, data_x, data_y, annotation_a = setup
        assert index.count((data_x, annotation_a)) == 1
        assert index.count((data_x, data_y)) == 1
        assert index.count((), db_size=3) == 3

    def test_tids_of_itemset(self, setup):
        _, index, data_x, _, annotation_a = setup
        assert index.tids_of_itemset((data_x, annotation_a)) == {0}

    def test_frequent_items(self, setup):
        _, index, data_x, data_y, annotation_a = setup
        assert index.frequent_items(2) == sorted(
            [data_x, data_y, annotation_a])
        assert index.frequent_items(
            2, annotation_like_only=True) == [annotation_a]

    def test_annotation_frequencies(self, setup):
        vocabulary, index, _, _, annotation_a = setup
        assert index.annotation_frequencies() == {annotation_a: 2}

    def test_contains(self, setup):
        _, index, data_x, _, annotation_a = setup
        assert data_x in index
        index.shrink_transaction(0, [annotation_a])
        index.shrink_transaction(2, [annotation_a])
        assert annotation_a not in index


class TestReadOnlyView:
    def test_as_mapping_rejects_mutation(self, setup):
        _, index, data_x, _, _ = setup
        view = index.as_mapping()
        with pytest.raises(TypeError):
            view[data_x] = frozenset({9999})
        with pytest.raises((TypeError, AttributeError)):
            del view[data_x]

    def test_view_values_cannot_corrupt_tids(self, setup):
        """Regression: mutation through the view must not alter tids()."""
        _, index, data_x, _, _ = setup
        before = index.tids(data_x)
        view = index.as_mapping()
        tidset = view[data_x]
        assert not hasattr(tidset, "add")
        # Materializing and mutating a copy must leave the index alone.
        leaked = set(tidset)
        leaked.add(9999)
        assert index.tids(data_x) == before
        assert 9999 not in index.tids(data_x)

    def test_view_is_live(self, setup):
        _, index, data_x, _, _ = setup
        view = index.as_mapping()
        index.extend_transaction(7, [data_x])
        assert 7 in view[data_x]


class TestEmptyBucketChurn:
    def test_shrink_prunes_dead_items(self, setup):
        """Regression: delete-heavy streams must not iterate dead items."""
        _, index, data_x, data_y, annotation_a = setup
        index.shrink_transaction(0, [annotation_a])
        index.shrink_transaction(2, [annotation_a])
        assert annotation_a not in index.items()
        assert index.annotation_frequencies() == {}
        assert index.frequent_items(1) == sorted([data_x, data_y])

    def test_remove_transaction_churn(self):
        vocabulary = ItemVocabulary()
        items = [vocabulary.intern_data(f"v{i}") for i in range(20)]
        index = VerticalIndex(vocabulary)
        for tid, item in enumerate(items):
            index.add_transaction(tid, frozenset({item}))
        # Delete every transaction: each add/remove cycle must leave no
        # residue for items()/frequent_items() to walk forever.
        for tid, item in enumerate(items):
            index.remove_transaction(tid, frozenset({item}))
        assert index.items() == []
        assert index.frequent_items(1) == []
        # Re-adding after churn works from a clean slate.
        index.add_transaction(0, frozenset({items[3]}))
        assert index.items() == [items[3]]

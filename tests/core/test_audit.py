"""Unit tests for the deep consistency audit."""

from repro.core.audit import audit
from repro.core.manager import AnnotationRuleManager
from tests.conftest import make_relation


def mined_manager():
    manager = AnnotationRuleManager(make_relation(), min_support=0.25,
                                    min_confidence=0.6)
    manager.mine()
    return manager


class TestConsistentState:
    def test_fresh_mine_is_consistent(self):
        report = audit(mined_manager())
        assert report.consistent, report.summary()
        assert report.checks_run > 10

    def test_after_every_event_kind(self):
        manager = mined_manager()
        manager.add_annotations([(3, "A")])
        manager.insert_annotated([(("9", "9"), ("C",))])
        manager.insert_unannotated([("8", "8")])
        manager.remove_annotations([(0, "A")])
        manager.remove_tuples([4])
        report = audit(manager)
        assert report.consistent, report.summary()

    def test_summary_text(self):
        report = audit(mined_manager())
        assert "consistent" in report.summary()

    def test_max_pattern_checks_caps_work(self):
        full = audit(mined_manager())
        capped = audit(mined_manager(), max_pattern_checks=2)
        assert capped.checks_run < full.checks_run
        assert capped.consistent


class TestCorruptionDetection:
    def test_detects_corrupted_pattern_count(self):
        manager = mined_manager()
        itemset = next(iter(manager.table))
        manager.table.counts[itemset] += 1
        report = audit(manager)
        assert not report.consistent
        assert any("stored count" in finding
                   for finding in report.findings)

    def test_detects_corrupted_index(self):
        manager = mined_manager()
        item = manager.index.items()[0]
        # as_mapping() is read-only now, so corrupt the storage directly.
        manager.index._bitmaps.add(item, 9999)
        report = audit(manager)
        assert not report.consistent
        assert any("index" in finding for finding in report.findings)

    def test_detects_corrupted_transaction(self):
        manager = mined_manager()
        ghost = manager.vocabulary.intern_data("ghost-value")
        manager.database.extend_transaction(0, [ghost])
        report = audit(manager)
        assert not report.consistent

    def test_detects_stale_rules(self):
        manager = mined_manager()
        stale = next(iter(manager.rules))
        manager.rules.add(stale.with_counts(
            union_count=max(0, stale.union_count - 1)))
        report = audit(manager)
        assert not report.consistent
        assert any("rule set diverges" in finding
                   for finding in report.findings)

    def test_detects_db_size_drift(self):
        manager = mined_manager()
        manager.relation._live += 1  # simulate a size accounting bug
        report = audit(manager)
        assert not report.consistent
        manager.relation._live -= 1

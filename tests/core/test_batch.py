"""``CorrelationEngine.apply_batch``: one pass, per-event parity."""

import pytest

from repro.core.engine import engine
from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
    RemoveAnnotations,
    RemoveTuples,
)
from repro.errors import DeltaPlanError, MaintenanceError, SchemaError
from tests.conftest import (
    assert_equivalent_to_remine,
    make_relation,
)


def mined(relation=None, **overrides):
    options = dict(min_support=0.25, min_confidence=0.6, validate=True)
    options.update(overrides)
    eng = engine(relation if relation is not None else make_relation(),
                 **options)
    eng.mine()
    return eng


MIXED_BATCH = [
    AddAnnotations.build([(3, "A"), (7, "B")]),
    AddAnnotatedTuples.build([(("1", "2"), ("A",)),
                              (("4", "3"), ("B",))]),
    RemoveAnnotations.build([(1, "B")]),
    AddUnannotatedTuples.build([("4", "5")]),
    RemoveTuples.build([5]),
]


class TestBatchEquivalence:
    def test_batch_matches_per_event_and_remine(self):
        per_event = mined()
        batched = mined()
        for event in MIXED_BATCH:
            per_event.apply(event)
        report = batched.apply_batch(MIXED_BATCH)
        assert batched.signature() == per_event.signature()
        assert batched.db_size == per_event.db_size
        assert_equivalent_to_remine(batched)
        assert report.events == len(MIXED_BATCH)

    def test_insert_then_delete_preserves_tid_assignment(self):
        per_event = mined()
        batched = mined()
        batch = [
            AddAnnotatedTuples.build([(("9", "9"), ("A",))]),   # tid 8
            RemoveTuples.build([8]),
            AddAnnotatedTuples.build([(("1", "3"), ("A", "B"))]),  # tid 9
        ]
        for event in batch:
            per_event.apply(event)
        batched.apply_batch(batch)
        assert batched.relation.tid_range == per_event.relation.tid_range
        assert not batched.relation.is_live(8)
        assert batched.relation.is_live(9)
        assert batched.signature() == per_event.signature()
        assert_equivalent_to_remine(batched)

    def test_single_event_batch_equals_apply(self):
        left, right = mined(), mined()
        event = AddAnnotations.build([(3, "A"), (7, "B")])
        report = left.apply(event)
        batch = right.apply_batch([event])
        assert left.signature() == right.signature()
        assert report.event == "add-annotations"
        assert batch.case_reports[0].tuples_scanned == report.tuples_scanned

    def test_fully_cancelled_batch_is_a_noop(self):
        eng = mined()
        before = eng.signature()
        report = eng.apply_batch([
            AddAnnotations.build([(3, "A")]),
            RemoveAnnotations.build([(3, "A")]),
        ])
        assert eng.signature() == before
        assert report.case_reports == []
        assert report.events == 2
        assert len(eng.log) == 2  # provenance survives coalescing


class TestBatchReportShape:
    def test_audit_rows_and_summary(self):
        eng = mined()
        report = eng.apply_batch(MIXED_BATCH)
        assert [audit.position for audit in report] == [1, 2, 3, 4, 5]
        assert "batch of 5 event(s)" in report.summary()
        assert report.table_size == len(eng.table)

    def test_one_validation_pass_for_the_whole_batch(self):
        eng = mined()
        calls = []
        original = eng.table.check_invariants

        def counting_check(*, floor=None):
            calls.append(floor)
            return original(floor=floor)

        eng.table.check_invariants = counting_check
        eng.apply_batch(MIXED_BATCH)
        assert len(calls) == 1

    def test_batch_failure_names_the_batch(self, monkeypatch):
        eng = mined()

        def broken_check(*, floor=None):
            raise MaintenanceError("synthetic")

        monkeypatch.setattr(eng.table, "check_invariants", broken_check)
        with pytest.raises(MaintenanceError, match=r"apply-batch\[5\]"):
            eng.apply_batch(MIXED_BATCH)

    def test_failed_validation_leaves_the_engine_stale(self, monkeypatch):
        """A batch whose invariant check fails must not keep serving
        incremental updates over the (possibly corrupt) table."""
        eng = mined()

        def broken_check(*, floor=None):
            raise MaintenanceError("synthetic")

        monkeypatch.setattr(eng.table, "check_invariants", broken_check)
        with pytest.raises(MaintenanceError, match="synthetic"):
            eng.apply_batch(MIXED_BATCH)
        monkeypatch.undo()
        with pytest.raises(MaintenanceError, match="stale"):
            eng.apply(AddAnnotations.build([(3, "A")]))
        eng.mine()   # the documented recovery
        eng.apply(AddAnnotations.build([(3, "A")]))
        assert_equivalent_to_remine(eng)


class TestBatchPoisonSafety:
    def test_compile_failure_mutates_nothing(self):
        eng = mined()
        version = eng.relation.version
        table_before = dict(eng.table.counts)
        with pytest.raises(DeltaPlanError):
            eng.apply_batch([
                AddAnnotations.build([(3, "A")]),
                AddAnnotations.build([(999, "A")]),   # unknown tuple
            ])
        assert eng.relation.version == version
        assert dict(eng.table.counts) == table_before
        assert len(eng.log) == 0
        # The engine is still healthy: the good event applies fine.
        eng.apply(AddAnnotations.build([(3, "A")]))
        assert_equivalent_to_remine(eng)

    def test_malformed_insert_row_rejected_before_mutation(self):
        """A schema-invalid row fails at compile time — not after
        earlier inserts in the batch already mutated the relation."""
        eng = mined()
        version = eng.relation.version
        with pytest.raises(SchemaError):
            eng.apply_batch([
                AddAnnotatedTuples.build([(("1", "2"), ("A",))]),
                AddUnannotatedTuples(rows=((),)),   # empty row
            ])
        assert eng.relation.version == version
        eng.apply(AddAnnotations.build([(3, "A")]))   # still healthy
        assert_equivalent_to_remine(eng)

    def test_empty_batch_rejected(self):
        eng = mined()
        with pytest.raises(MaintenanceError):
            eng.apply_batch([])

    def test_requires_mining_first(self):
        eng = engine(make_relation(), min_support=0.25, min_confidence=0.6)
        with pytest.raises(MaintenanceError, match="mine"):
            eng.apply_batch([AddAnnotations.build([(3, "A")])])


class TestBoundedEventLog:
    def test_engine_log_rotates_at_the_config_bound(self):
        eng = mined(max_log_events=3)
        with pytest.warns(RuntimeWarning, match="EventLog rotating"):
            for _ in range(5):
                eng.apply(AddAnnotations.build([(3, "A")]))
                eng.apply(RemoveAnnotations.build([(3, "A")]))
        assert len(eng.log) == 3
        assert eng.log.dropped == 7
        assert not eng.log.complete

    def test_unbounded_by_default(self):
        eng = mined()
        for _ in range(4):
            eng.apply(AddAnnotations.build([(3, "A")]))
            eng.apply(RemoveAnnotations.build([(3, "A")]))
        assert len(eng.log) == 8 and eng.log.complete

"""Unit tests for rule derivation from the pattern table."""

import pytest

from repro.core.derive import derive_rules, iter_rule_shapes
from repro.core.pattern_table import FrequentPatternTable
from repro.core.rules import RuleKind
from repro.core.stats import Thresholds
from repro.errors import MaintenanceError
from repro.mining.itemsets import ItemVocabulary


@pytest.fixture
def vocabulary():
    vocab = ItemVocabulary()
    vocab.intern_data("x")        # 0
    vocab.intern_data("y")        # 1
    vocab.intern_annotation("A")  # 2
    vocab.intern_annotation("B")  # 3
    return vocab


class TestRuleShapes:
    def test_singleton_produces_nothing(self, vocabulary):
        assert list(iter_rule_shapes((2,), vocabulary)) == []

    def test_data_only_produces_nothing(self, vocabulary):
        assert list(iter_rule_shapes((0, 1), vocabulary)) == []

    def test_single_annotation_mixed_is_one_d2a(self, vocabulary):
        shapes = list(iter_rule_shapes((0, 1, 2), vocabulary))
        assert shapes == [(RuleKind.DATA_TO_ANNOTATION, (0, 1), 2)]

    def test_annotation_only_pair_is_two_a2a(self, vocabulary):
        shapes = set(iter_rule_shapes((2, 3), vocabulary))
        assert shapes == {
            (RuleKind.ANNOTATION_TO_ANNOTATION, (2,), 3),
            (RuleKind.ANNOTATION_TO_ANNOTATION, (3,), 2),
        }

    def test_irrelevant_mixed_produces_nothing(self, vocabulary):
        assert list(iter_rule_shapes((0, 2, 3), vocabulary)) == []


class TestDeriveRules:
    def make_table(self, vocabulary, counts):
        table = FrequentPatternTable(vocabulary)
        table.replace(counts)
        return table

    def test_d2a_rule_derivation(self, vocabulary):
        table = self.make_table(vocabulary, {
            (0,): 5, (2,): 5, (0, 2): 4,
        })
        rules, near = derive_rules(table, Thresholds(0.3, 0.7), db_size=10)
        assert len(rules) == 1
        rule = next(iter(rules))
        assert rule.kind is RuleKind.DATA_TO_ANNOTATION
        assert rule.union_count == 4 and rule.lhs_count == 5
        assert rule.support == pytest.approx(0.4)
        assert rule.confidence == pytest.approx(0.8)
        assert near == []

    def test_a2a_rules_both_directions(self, vocabulary):
        table = self.make_table(vocabulary, {
            (2,): 6, (3,): 4, (2, 3): 4,
        })
        rules, _ = derive_rules(table, Thresholds(0.3, 0.9), db_size=10)
        keys = {rule.key for rule in rules}
        # B -> A has confidence 1.0; A -> B only 0.67 and is excluded.
        assert (RuleKind.ANNOTATION_TO_ANNOTATION, (3,), 2) in keys
        assert (RuleKind.ANNOTATION_TO_ANNOTATION, (2,), 3) not in keys

    def test_near_misses_collected(self, vocabulary):
        table = self.make_table(vocabulary, {
            (0,): 6, (2,): 4, (0, 2): 3,
        })
        thresholds = Thresholds(0.4, 0.8, margin=0.5)
        rules, near = derive_rules(table, thresholds, db_size=10)
        assert len(rules) == 0
        assert len(near) == 1
        assert near[0].support == pytest.approx(0.3)

    def test_lost_closure_raises(self, vocabulary):
        table = self.make_table(vocabulary, {(0, 2): 4, (2,): 4})
        with pytest.raises(MaintenanceError):
            derive_rules(table, Thresholds(0.3, 0.7), db_size=10)

    def test_sub_margin_patterns_produce_nothing(self, vocabulary):
        # Union pattern below both thresholds and the margin band.
        table = self.make_table(vocabulary, {(0,): 9, (2,): 1, (0, 2): 1})
        rules, near = derive_rules(table, Thresholds(0.4, 0.8, margin=0.75),
                                   db_size=10)
        assert len(rules) == 0 and near == []

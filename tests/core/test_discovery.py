"""Unit tests for Figure 13 seeded discovery and level-wise completion."""

import pytest

from repro.core.annotation_index import VerticalIndex
from repro.core.discovery import complete_table, discover_with_seeds
from repro.core.pattern_table import FrequentPatternTable
from repro.errors import MaintenanceError
from repro.mining.constraints import (
    CombinedRelevanceConstraint,
    UnrestrictedConstraint,
)
from repro.mining.itemsets import ItemVocabulary


def build_state(transactions):
    """Vocabulary, index and empty table over explicit transactions."""
    vocabulary = ItemVocabulary()
    # Interning scheme for readability: "d0".."dN" data, "a0".. annotations.
    ids = {}

    def intern(token):
        if token not in ids:
            if token.startswith("d"):
                ids[token] = vocabulary.intern_data(token)
            else:
                ids[token] = vocabulary.intern_annotation(token)
        return ids[token]

    index = VerticalIndex(vocabulary)
    encoded = []
    for tid, tokens in enumerate(transactions):
        transaction = frozenset(intern(token) for token in tokens)
        index.add_transaction(tid, transaction)
        encoded.append(transaction)
    table = FrequentPatternTable(vocabulary)
    return vocabulary, index, table, ids, encoded


class TestDiscoverWithSeeds:
    def test_adds_all_itemsets_containing_seed(self):
        vocabulary, index, table, ids, _ = build_state([
            ("d0", "a0"), ("d0", "a0"), ("d0",), ("d1", "a0")])
        added = discover_with_seeds(
            table, index, [ids["a0"]], min_count=2,
            constraint=CombinedRelevanceConstraint(vocabulary))
        assert set(added) == {(ids["a0"],),
                              tuple(sorted((ids["d0"], ids["a0"])))}
        assert table.count((ids["a0"],)) == 3

    def test_infrequent_seed_gated(self):
        vocabulary, index, table, ids, _ = build_state([
            ("d0", "a0"), ("d0",), ("d0",)])
        added = discover_with_seeds(
            table, index, [ids["a0"]], min_count=2,
            constraint=UnrestrictedConstraint())
        assert added == []
        assert len(table) == 0

    def test_existing_entries_not_duplicated(self):
        vocabulary, index, table, ids, _ = build_state([
            ("d0", "a0"), ("d0", "a0")])
        table.set_count((ids["a0"],), 2)
        added = discover_with_seeds(
            table, index, [ids["a0"]], min_count=2,
            constraint=UnrestrictedConstraint())
        assert (ids["a0"],) not in added

    def test_validation_detects_drift(self):
        vocabulary, index, table, ids, _ = build_state([
            ("d0", "a0"), ("d0", "a0")])
        table.set_count((ids["a0"],), 99)  # wrong on purpose
        with pytest.raises(MaintenanceError):
            discover_with_seeds(table, index, [ids["a0"]], min_count=2,
                                constraint=UnrestrictedConstraint(),
                                validate=True)

    def test_max_length_respected(self):
        vocabulary, index, table, ids, _ = build_state([
            ("d0", "d1", "a0")] * 3)
        added = discover_with_seeds(
            table, index, [ids["a0"]], min_count=2,
            constraint=UnrestrictedConstraint(), max_length=2)
        assert all(len(itemset) <= 2 for itemset in added)


class TestCompleteTable:
    def test_completion_reaches_missing_itemsets(self):
        vocabulary, index, table, ids, _ = build_state([
            ("d0", "d1"), ("d0", "d1"), ("d0",)])
        added = complete_table(table, index, floor=2,
                               constraint=UnrestrictedConstraint())
        assert set(added) == {(ids["d0"],), (ids["d1"],),
                              tuple(sorted((ids["d0"], ids["d1"])))}

    def test_completion_is_incremental(self):
        vocabulary, index, table, ids, _ = build_state([
            ("d0", "d1"), ("d0", "d1"), ("d0",)])
        table.set_count((ids["d0"],), 3)
        added = complete_table(table, index, floor=2,
                               constraint=UnrestrictedConstraint())
        assert (ids["d0"],) not in added
        assert tuple(sorted((ids["d0"], ids["d1"]))) in added

    def test_constraint_respected(self):
        vocabulary, index, table, ids, _ = build_state([
            ("d0", "a0", "a1")] * 3)
        constraint = CombinedRelevanceConstraint(vocabulary)
        complete_table(table, index, floor=2, constraint=constraint)
        for itemset in table:
            assert constraint.admits(itemset)

    def test_floor_respected(self):
        vocabulary, index, table, ids, _ = build_state([
            ("d0",), ("d0",), ("d1",)])
        complete_table(table, index, floor=2,
                       constraint=UnrestrictedConstraint())
        assert (ids["d1"],) not in table

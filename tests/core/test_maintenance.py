"""Unit tests for the Figure 12 refresh and decay walks."""

import pytest

from repro.core.maintenance import (
    MaintenanceReport,
    TupleDelta,
    decay_for_deleted_tuples,
    decay_for_removed_items,
    refresh_for_added_items,
)
from repro.core.pattern_table import FrequentPatternTable
from repro.mining.itemsets import ItemVocabulary


@pytest.fixture
def setup():
    vocabulary = ItemVocabulary()
    data_x = vocabulary.intern_data("x")        # 0
    annotation_a = vocabulary.intern_annotation("A")  # 1
    annotation_b = vocabulary.intern_annotation("B")  # 2
    table = FrequentPatternTable(vocabulary)
    table.replace({
        (data_x,): 5,
        (annotation_a,): 3,
        (data_x, annotation_a): 2,
        (annotation_a, annotation_b): 1,
        (annotation_b,): 2,
    })
    return table, data_x, annotation_a, annotation_b


class TestRefresh:
    def test_only_patterns_with_new_items_bumped(self, setup):
        table, data_x, annotation_a, annotation_b = setup
        # Tuple already had x; batch adds annotation A.
        delta = TupleDelta(tid=7,
                           after=frozenset({data_x, annotation_a}),
                           changed_items=frozenset({annotation_a}))
        touched = refresh_for_added_items(table, [delta])
        assert touched == 2
        assert table.count((data_x,)) == 5          # unchanged: no new item
        assert table.count((annotation_a,)) == 4
        assert table.count((data_x, annotation_a)) == 3

    def test_pattern_with_two_new_items_bumped_once(self, setup):
        table, data_x, annotation_a, annotation_b = setup
        delta = TupleDelta(
            tid=7,
            after=frozenset({data_x, annotation_a, annotation_b}),
            changed_items=frozenset({annotation_a, annotation_b}))
        refresh_for_added_items(table, [delta])
        assert table.count((annotation_a, annotation_b)) == 2

    def test_unrelated_patterns_untouched(self, setup):
        table, data_x, annotation_a, annotation_b = setup
        delta = TupleDelta(tid=7,
                           after=frozenset({annotation_b}),
                           changed_items=frozenset({annotation_b}))
        refresh_for_added_items(table, [delta])
        assert table.count((data_x, annotation_a)) == 2


class TestDecay:
    def test_removed_items_decrement(self, setup):
        table, data_x, annotation_a, _ = setup
        delta = TupleDelta(tid=7,
                           after=frozenset({data_x, annotation_a}),
                           changed_items=frozenset({annotation_a}))
        decay_for_removed_items(table, [delta])
        assert table.count((annotation_a,)) == 2
        assert table.count((data_x, annotation_a)) == 1
        assert table.count((data_x,)) == 5

    def test_deleted_tuple_decrements_everything(self, setup):
        table, data_x, annotation_a, _ = setup
        decay_for_deleted_tuples(
            table, [frozenset({data_x, annotation_a})])
        assert table.count((data_x,)) == 4
        assert table.count((annotation_a,)) == 2
        assert table.count((data_x, annotation_a)) == 1


class TestReport:
    def test_summary_mentions_key_numbers(self):
        report = MaintenanceReport(event="add-annotations", db_size=100)
        report.rules_updated = 3
        report.patterns_touched = 7
        text = report.summary()
        assert "add-annotations" in text
        assert "db=100" in text
        assert "3 updated" in text

"""Legacy snapshot formats under the v4 reader.

Each version's writer is reconstructed by stripping exactly the keys
that version's spec lacks from a current document — v1 has no
revision/catalog, v2 no shard layout, v3 no journal anchor.  All of
them must load, round-trip through the v4 writer unchanged in
substance, and malformed v4 journal anchors must refuse.
"""

import pytest

from repro.core import persistence
from repro.core.engine import engine
from repro.errors import FormatError
from repro.shard import ShardedEngine
from tests.conftest import make_relation


def mined(shards=1):
    if shards > 1:
        manager = ShardedEngine(make_relation(), min_support=0.25,
                                min_confidence=0.6, shards=shards)
    else:
        manager = engine(make_relation(), min_support=0.25,
                         min_confidence=0.6)
    manager.mine()
    manager.add_annotations([(3, "A")])
    return manager


def downgrade(document, version):
    """What a version-N writer would have produced."""
    aged = dict(document)
    aged["format_version"] = version
    if version < 4:
        aged.pop("journal", None)
    if version < 3:
        aged.pop("shards", None)
    if version < 2:
        aged.pop("engine_revision", None)
        aged.pop("catalog", None)
    return aged


@pytest.mark.parametrize("version", [1, 2, 3])
def test_legacy_documents_load_under_the_v4_reader(version):
    manager = mined()
    aged = downgrade(persistence.snapshot(manager), version)
    restored = persistence.restore(aged)
    assert restored.signature() == manager.signature()
    assert restored.db_size == manager.db_size
    if version >= 2:
        assert restored.revision == manager.revision
    restored.close()
    manager.close()


@pytest.mark.parametrize("version", [1, 2, 3])
def test_legacy_round_trip_is_substance_preserving(version):
    """Restoring an old document and re-saving it yields a current
    document with the identical pattern table and thresholds."""
    manager = mined()
    current = persistence.snapshot(manager)
    restored = persistence.restore(downgrade(current, version))
    resaved = persistence.snapshot(restored)
    assert resaved["format_version"] == persistence.FORMAT_VERSION
    assert resaved["pattern_table"] == current["pattern_table"]
    assert resaved["thresholds"] == current["thresholds"]
    assert resaved["tuples"] == current["tuples"]
    assert resaved["annotations"] == current["annotations"]
    restored.close()
    manager.close()


def test_v3_sharded_layout_still_loads():
    manager = mined(shards=3)
    aged = downgrade(persistence.snapshot(manager), 3)
    restored = persistence.restore(aged)
    assert isinstance(restored, ShardedEngine)
    assert restored.shard_count == 3
    assert restored.assignment() == manager.assignment()
    assert restored.signature() == manager.signature()
    restored.close()
    manager.close()


def test_v4_journal_anchor_round_trips():
    manager = mined()
    document = persistence.snapshot(manager, journal_seq=41)
    assert document["journal"] == {"seq": 41}
    restored = persistence.restore(document)
    assert restored.signature() == manager.signature()
    restored.close()
    manager.close()


@pytest.mark.parametrize("journal", ["nope", {"seq": -1},
                                     {"seq": "41"}, {}])
def test_malformed_journal_anchor_refuses(journal):
    manager = mined()
    document = persistence.snapshot(manager)
    document["journal"] = journal
    with pytest.raises(FormatError, match="journal key is malformed"):
        persistence.restore(document)
    manager.close()


def test_future_version_refuses():
    manager = mined()
    document = persistence.snapshot(manager)
    document["format_version"] = persistence.FORMAT_VERSION + 1
    with pytest.raises(FormatError, match="unsupported snapshot"):
        persistence.restore(document)
    manager.close()

"""Unit tests for the write-ahead event journal file format.

The format's whole contract is in three behaviors: records round-trip
exactly, a torn tail (what a crash mid-append leaves) is truncated on
open, and the same damage anywhere *before* the tail — which no append
crash can produce — is corruption and refuses loudly.
"""

import json
import struct
import zlib

import pytest

from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
    RemoveAnnotations,
    RemoveTuples,
)
from repro.core.journal import (
    MAGIC,
    CrashInjected,
    EventJournal,
    event_from_json,
    event_to_json,
    scan_journal,
)
from repro.errors import FormatError, MaintenanceError

EVENTS = [
    AddAnnotations.build([(0, "A1"), (2, "A2")]),
    RemoveAnnotations.build([(1, "A1")]),
    AddAnnotatedTuples.build([(("a", "x"), ("A1", "A2"))]),
    AddUnannotatedTuples.build([("b", "y")]),
    RemoveTuples.build([3, 5]),
]

_HEADER = struct.Struct("<II")


def wal(tmp_path):
    return tmp_path / "events.wal"


class TestEventCodec:
    @pytest.mark.parametrize("event", EVENTS, ids=lambda e: type(e).__name__)
    def test_round_trip(self, event):
        assert event_from_json(event_to_json(event)) == event

    def test_wire_names_match_server_codec(self):
        # Journal dumps and HTTP payloads must read the same.
        from repro.server.tenants import event_from_json as server_decode

        for event in EVENTS:
            assert server_decode(event_to_json(event)) == event

    def test_decode_rejects_unknown_type(self):
        with pytest.raises(FormatError, match="unknown journaled event"):
            event_from_json({"type": "explode"})

    def test_decode_rejects_mangled_payload(self):
        with pytest.raises(FormatError, match="corrupt journaled"):
            event_from_json({"type": "add_annotations",
                             "additions": "not-a-list"})

    def test_decode_rejects_non_object(self):
        with pytest.raises(FormatError):
            event_from_json(["add_annotations"])


class TestAppendAndRead:
    def test_sequences_are_contiguous_from_one(self, tmp_path):
        journal = EventJournal(wal(tmp_path))
        assert journal.append_batch([EVENTS[0]]) == 1
        assert journal.append_mine() == 2
        assert journal.append_batch(EVENTS[1:3]) == 3
        assert journal.last_seq == 3
        assert journal.floor_seq == 0
        journal.close()

    def test_records_round_trip_and_filter(self, tmp_path):
        journal = EventJournal(wal(tmp_path))
        journal.append_batch([EVENTS[0]])
        journal.append_mine()
        journal.append_batch(EVENTS[1:3])
        records = list(journal.records())
        assert [(r.seq, r.kind) for r in records] \
            == [(1, "batch"), (2, "mine"), (3, "batch")]
        assert records[0].events == (EVENTS[0],)
        assert records[2].events == tuple(EVENTS[1:3])
        assert [r.seq for r in journal.records(after=2)] == [3]
        journal.close()

    def test_reopen_resumes_the_sequence(self, tmp_path):
        journal = EventJournal(wal(tmp_path))
        journal.append_batch([EVENTS[0]])
        journal.close()
        reopened = EventJournal(wal(tmp_path))
        assert reopened.last_seq == 1
        assert reopened.append_batch([EVENTS[1]]) == 2
        reopened.close()

    def test_empty_batch_rejected(self, tmp_path):
        journal = EventJournal(wal(tmp_path))
        with pytest.raises(MaintenanceError):
            journal.append_batch([])
        journal.close()

    def test_no_fsync_mode_syncs_on_demand(self, tmp_path):
        journal = EventJournal(wal(tmp_path), fsync=False)
        journal.append_batch([EVENTS[0]])
        assert journal._dirty
        journal.sync()
        assert not journal._dirty
        journal.close()

    def test_advance_to_requires_empty_journal(self, tmp_path):
        journal = EventJournal(wal(tmp_path))
        journal.advance_to(7)
        assert journal.last_seq == 7 and journal.floor_seq == 7
        assert journal.append_batch([EVENTS[0]]) == 8
        with pytest.raises(FormatError, match="still holds records"):
            journal.advance_to(99)
        journal.close()


class TestTornTail:
    """A crash mid-append leaves a torn tail; opening truncates it."""

    def _journal_with_two_records(self, tmp_path):
        journal = EventJournal(wal(tmp_path))
        journal.append_batch([EVENTS[0]])
        journal.append_batch([EVENTS[1]])
        journal.close()
        return wal(tmp_path)

    @pytest.mark.parametrize("cut", [1, 4, 20])
    def test_truncated_on_open(self, tmp_path, cut):
        path = self._journal_with_two_records(tmp_path)
        whole = path.read_bytes()
        journal = EventJournal(path)
        journal.append_batch([EVENTS[2]])
        journal.close()
        grown = path.read_bytes()
        assert len(grown) > len(whole)
        # Tear the third record `cut` bytes in.
        path.write_bytes(grown[:len(whole) + cut])
        reopened = EventJournal(path)
        assert reopened.truncated_bytes == cut
        assert reopened.last_seq == 2
        assert [r.seq for r in reopened.records()] == [1, 2]
        # The sequence continues where the durable history ended.
        assert reopened.append_batch([EVENTS[3]]) == 3
        reopened.close()

    def test_partial_magic_is_all_torn(self, tmp_path):
        path = wal(tmp_path)
        path.write_bytes(MAGIC[:3])
        journal = EventJournal(path)
        assert journal.truncated_bytes == 3
        assert journal.last_seq == 0
        assert journal.append_batch([EVENTS[0]]) == 1
        journal.close()

    def test_records_raises_on_torn_tail_unless_tolerated(self, tmp_path):
        path = self._journal_with_two_records(tmp_path)
        journal = EventJournal(path)
        # Tear the file *behind* the open journal — the shape a reader
        # racing a live appender sees mid-write.
        with open(path, "ab") as handle:
            handle.write(b"\x99\x00\x00")
        with pytest.raises(FormatError, match="torn tail"):
            list(journal.records())
        assert [r.seq for r in
                journal.records(tolerate_torn_tail=True)] == [1, 2]
        journal.close()
        scan = scan_journal(path)
        assert scan.torn_bytes == 3
        assert [r.seq for r in scan.records] == [1, 2]

    def test_corrupt_final_record_that_checksums_is_truncated(self, tmp_path):
        path = self._journal_with_two_records(tmp_path)
        # Append a record whose checksum is valid but whose seq breaks
        # the chain — content damage on the tail is still recoverable.
        payload = json.dumps({"seq": 9, "kind": "mine"}).encode()
        with open(path, "ab") as handle:
            handle.write(_HEADER.pack(len(payload), zlib.crc32(payload))
                         + payload)
        reopened = EventJournal(path)
        assert reopened.truncated_bytes > 0
        assert reopened.last_seq == 2
        reopened.close()


class TestMidFileCorruption:
    """Damage with valid data after it cannot be a crash: refuse."""

    def test_bit_flip_in_first_record(self, tmp_path):
        journal = EventJournal(wal(tmp_path))
        journal.append_batch([EVENTS[0]])
        journal.append_batch([EVENTS[1]])
        journal.close()
        data = bytearray(wal(tmp_path).read_bytes())
        data[len(MAGIC) + _HEADER.size + 2] ^= 0xFF
        wal(tmp_path).write_bytes(bytes(data))
        with pytest.raises(FormatError, match="checksum mismatch"):
            scan_journal(wal(tmp_path))
        with pytest.raises(FormatError):
            EventJournal(wal(tmp_path))

    def test_sequence_break_mid_file(self, tmp_path):
        path = wal(tmp_path)
        journal = EventJournal(path)
        journal.append_batch([EVENTS[0]])
        journal.close()
        # Hand-craft records 5 then 1: the gap is mid-file damage.
        for seq in (5, 6):
            payload = json.dumps({"seq": seq, "kind": "mine"},
                                 separators=(",", ":")).encode()
            with open(path, "ab") as handle:
                handle.write(_HEADER.pack(len(payload),
                                          zlib.crc32(payload)) + payload)
        with pytest.raises(FormatError, match="sequence break"):
            scan_journal(path)

    def test_bad_magic_refused(self, tmp_path):
        path = wal(tmp_path)
        path.write_bytes(b"NOTAJRNL" + b"x" * 32)
        with pytest.raises(FormatError, match="bad magic"):
            scan_journal(path)


class TestFaultHook:
    def test_torn_append_budget(self, tmp_path):
        budgets = iter([None, 5])
        journal = EventJournal(
            wal(tmp_path),
            fault_hook=lambda point: next(budgets, None))
        journal.append_batch([EVENTS[0]])  # budget None: lands whole
        with pytest.raises(CrashInjected):
            journal.append_batch([EVENTS[1]])
        journal.close()
        reopened = EventJournal(wal(tmp_path))
        assert reopened.truncated_bytes == 5
        assert reopened.last_seq == 1
        reopened.close()

    def test_raising_hook_aborts_before_any_write(self, tmp_path):
        journal = EventJournal(wal(tmp_path))
        journal.append_batch([EVENTS[0]])
        size_before = wal(tmp_path).stat().st_size

        def hook(point):
            raise CrashInjected(point)

        journal.fault_hook = hook
        with pytest.raises(CrashInjected):
            journal.append_batch([EVENTS[1]])
        journal.fault_hook = None
        assert wal(tmp_path).stat().st_size == size_before
        assert journal.last_seq == 1
        journal.close()

"""Unit tests for association rules and rule sets."""

import pytest

from repro.core.rules import AssociationRule, RuleKind, RuleSet
from repro.errors import ItemKindError
from repro.mining.itemsets import ItemVocabulary


def rule(lhs=(0, 1), rhs=2, union=4, lhs_count=5, db=10,
         kind=RuleKind.DATA_TO_ANNOTATION):
    return AssociationRule(kind=kind, lhs=tuple(lhs), rhs=rhs,
                           union_count=union, lhs_count=lhs_count,
                           db_size=db)


class TestValidation:
    def test_empty_lhs_rejected(self):
        with pytest.raises(ItemKindError):
            rule(lhs=())

    def test_rhs_in_lhs_rejected(self):
        with pytest.raises(ItemKindError):
            rule(lhs=(1, 2), rhs=2)

    def test_non_canonical_lhs_rejected(self):
        with pytest.raises(ItemKindError):
            rule(lhs=(1, 0))

    def test_union_bounded_by_lhs_count(self):
        with pytest.raises(ItemKindError):
            rule(union=6, lhs_count=5)

    def test_lhs_count_bounded_by_db(self):
        with pytest.raises(ItemKindError):
            rule(lhs_count=11, db=10)


class TestStatistics:
    def test_support_and_confidence(self):
        r = rule(union=4, lhs_count=5, db=10)
        assert r.support == pytest.approx(0.4)
        assert r.confidence == pytest.approx(0.8)

    def test_support_never_exceeds_confidence(self):
        r = rule(union=3, lhs_count=4, db=20)
        assert r.support <= r.confidence

    def test_zero_db(self):
        r = rule(union=0, lhs_count=0, db=0)
        assert r.support == 0.0
        assert r.confidence == 0.0

    def test_lift_uses_rhs_lower_bound(self):
        r = rule(union=4, lhs_count=5, db=10)
        # rhs rate lower bound = 4/10; lift = 0.8 / 0.4 = 2.0
        assert r.lift == pytest.approx(2.0)

    def test_with_counts(self):
        updated = rule().with_counts(union_count=5, lhs_count=6, db_size=12)
        assert (updated.union_count, updated.lhs_count, updated.db_size) \
            == (5, 6, 12)
        assert updated.lhs == rule().lhs

    def test_key_and_union_itemset(self):
        r = rule()
        assert r.key == (RuleKind.DATA_TO_ANNOTATION, (0, 1), 2)
        assert r.union_itemset == (0, 1, 2)


class TestRender:
    def test_figure7_format(self):
        vocabulary = ItemVocabulary()
        value_28 = vocabulary.intern_data("28")
        value_85 = vocabulary.intern_data("85")
        annotation = vocabulary.intern_annotation("Annot_1")
        r = AssociationRule(kind=RuleKind.DATA_TO_ANNOTATION,
                            lhs=tuple(sorted((value_28, value_85))),
                            rhs=annotation,
                            union_count=4194, lhs_count=4342, db_size=10000)
        assert r.render(vocabulary) == "28 85 ==> Annot_1, 0.9659, 0.4194"


class TestRuleSet:
    def test_add_get_discard(self):
        rules = RuleSet()
        r = rule()
        rules.add(r)
        assert rules.get(r.key) is r
        assert len(rules) == 1
        removed = rules.discard(r.key)
        assert removed is r
        assert len(rules) == 0
        assert rules.discard(r.key) is None

    def test_add_replaces_same_key(self):
        rules = RuleSet()
        rules.add(rule(union=3))
        rules.add(rule(union=4))
        assert len(rules) == 1
        assert rules.get(rule().key).union_count == 4

    def test_mentioning_index(self):
        rules = RuleSet([rule()])
        with pytest.deprecated_call():
            assert len(rules.mentioning(0)) == 1
        with pytest.deprecated_call():
            assert len(rules.mentioning(2)) == 1  # RHS is indexed too
        with pytest.deprecated_call():
            assert rules.mentioning(9) == []

    def test_mentioning_index_cleans_up(self):
        rules = RuleSet([rule()])
        rules.discard(rule().key)
        with pytest.deprecated_call():
            assert rules.mentioning(0) == []

    def test_of_kind_and_with_rhs(self):
        d2a = rule()
        a2a = rule(lhs=(3,), rhs=2, union=2, lhs_count=3,
                   kind=RuleKind.ANNOTATION_TO_ANNOTATION)
        rules = RuleSet([d2a, a2a])
        with pytest.deprecated_call():
            assert rules.of_kind(RuleKind.DATA_TO_ANNOTATION) == [d2a]
        with pytest.deprecated_call():
            assert set(r.key for r in rules.with_rhs(2)) == \
                {d2a.key, a2a.key}

    def test_deprecated_lookups_warn_and_match_the_catalog(self):
        """The hot-path deprecations are real warnings, and the legacy
        answers still agree with the catalog they delegate to."""
        d2a = rule()
        rules = RuleSet([d2a])
        for call in (lambda: rules.mentioning(0),
                     lambda: rules.of_kind(RuleKind.DATA_TO_ANNOTATION),
                     lambda: rules.with_rhs(2)):
            with pytest.warns(DeprecationWarning,
                              match="catalog\\(\\) instead"):
                legacy = call()
            assert legacy == [d2a]

    def test_sorted_rules_deterministic(self):
        rules = RuleSet([
            rule(lhs=(1,), rhs=5, union=2, lhs_count=3),
            rule(lhs=(0,), rhs=5, union=2, lhs_count=3),
            rule(lhs=(0, 1), rhs=5, union=2, lhs_count=3),
        ])
        ordered = [r.lhs for r in rules.sorted_rules()]
        assert ordered == [(0,), (1,), (0, 1)]

    def test_same_rules_counts_matter(self):
        left = RuleSet([rule(union=4)])
        right = RuleSet([rule(union=3)])
        assert not left.same_rules(right)
        right = RuleSet([rule(union=4)])
        assert left.same_rules(right)

    def test_diff_keys(self):
        left = RuleSet([rule()])
        right = RuleSet([rule(lhs=(7,), union=2, lhs_count=3)])
        only_left, only_right = left.diff_keys(right)
        assert only_left == {rule().key}
        assert only_right == {(RuleKind.DATA_TO_ANNOTATION, (7,), 2)}

"""Unit tests for rule evidence and explanations."""

import pytest

from repro.core.explain import explain_rule, render_evidence, verify_evidence
from tests.conftest import make_relation
from repro.core.manager import AnnotationRuleManager


@pytest.fixture
def manager():
    rows = [(("1", "2"), ("A",))] * 5 + [(("1", "3"), ())] \
        + [(("4", "2"), ())] * 2
    manager = AnnotationRuleManager(make_relation(rows), min_support=0.3,
                                    min_confidence=0.6)
    manager.mine()
    return manager


def rule_with_lhs_token(manager, token):
    for rule in manager.rules:
        if manager.vocabulary.render(rule.lhs) == token:
            return rule
    raise AssertionError(f"no rule with LHS {token!r}")


class TestExplainRule:
    def test_supporting_and_violating_tids(self, manager):
        rule = rule_with_lhs_token(manager, "1")
        evidence = explain_rule(manager, rule)
        assert evidence.supporting_tids == (0, 1, 2, 3, 4)
        assert evidence.violating_tids == (5,)
        assert evidence.exception_rate == pytest.approx(1 / 6)

    def test_counts_cross_check(self, manager):
        for rule in manager.rules:
            evidence = explain_rule(manager, rule)
            assert verify_evidence(manager, evidence), \
                rule.render(manager.vocabulary)

    def test_cross_check_after_incremental_updates(self, manager):
        manager.add_annotations([(5, "A"), (6, "B")])
        manager.insert_annotated([(("1", "2"), ("A",))])
        for rule in manager.rules:
            evidence = explain_rule(manager, rule)
            assert verify_evidence(manager, evidence)

    def test_max_tids_truncation(self, manager):
        rule = rule_with_lhs_token(manager, "1")
        evidence = explain_rule(manager, rule, max_tids=2)
        assert len(evidence.supporting_tids) == 2

    def test_measures_included(self, manager):
        rule = rule_with_lhs_token(manager, "1")
        evidence = explain_rule(manager, rule,
                                measures=("lift", "kulczynski"))
        assert set(evidence.measures) == {"lift", "kulczynski"}
        assert evidence.measures["lift"] > 1.0  # planted correlation

    def test_rhs_count_is_frequency_table_entry(self, manager):
        rule = rule_with_lhs_token(manager, "1")
        evidence = explain_rule(manager, rule)
        assert evidence.rhs_count == manager.index.frequency(rule.rhs)


class TestRender:
    def test_text_block_contents(self, manager):
        rule = rule_with_lhs_token(manager, "1")
        text = render_evidence(manager, explain_rule(manager, rule))
        assert "==>" in text
        assert "lift" in text
        assert "exceptions: 1 tuple(s)" in text
        assert "violates tid=5" in text

    def test_sample_limits_rows(self, manager):
        rule = rule_with_lhs_token(manager, "1")
        text = render_evidence(manager, explain_rule(manager, rule),
                               sample=1)
        assert text.count("supports tid=") == 1

"""Unit and scenario tests for the annotation rule manager."""

import pytest

from repro.core.manager import AnnotationRuleManager
from repro.core.rules import RuleKind
from repro.errors import MaintenanceError
from tests.conftest import assert_equivalent_to_remine, make_relation


def manager_over_reference(**kwargs):
    manager = AnnotationRuleManager(
        make_relation(), min_support=0.25, min_confidence=0.6,
        validate=True, **kwargs)
    manager.mine()
    return manager


class TestLifecycle:
    def test_rules_before_mine_raises(self):
        manager = AnnotationRuleManager(make_relation(), min_support=0.3,
                                        min_confidence=0.6)
        with pytest.raises(MaintenanceError):
            _ = manager.rules

    def test_apply_before_mine_raises(self):
        manager = AnnotationRuleManager(make_relation(), min_support=0.3,
                                        min_confidence=0.6)
        with pytest.raises(MaintenanceError):
            manager.add_annotations([(0, "Z")])

    def test_mine_reports_rules(self):
        manager = manager_over_reference()
        report = manager.log  # the mine itself is not logged as an event
        assert len(report) == 0
        assert len(manager.rules) > 0
        assert manager.is_mined

    def test_out_of_band_mutation_detected(self):
        manager = manager_over_reference()
        manager.relation.insert(("99",))
        with pytest.raises(MaintenanceError):
            manager.add_annotations([(0, "Z")])

    def test_unknown_event_rejected(self):
        manager = manager_over_reference()
        with pytest.raises(MaintenanceError):
            manager.apply(object())

    def test_events_are_logged(self):
        manager = manager_over_reference()
        manager.add_annotations([(3, "A")])
        manager.insert_unannotated([("7", "8")])
        assert len(manager.log) == 2


class TestCase3AddAnnotations:
    def test_equivalence_after_batch(self):
        manager = manager_over_reference()
        manager.add_annotations([(3, "A"), (5, "A"), (0, "B")])
        assert_equivalent_to_remine(manager)

    def test_duplicate_annotation_is_noop(self):
        manager = manager_over_reference()
        report = manager.add_annotations([(0, "A")])  # tuple 0 already has A
        assert report.tuples_scanned == 0
        assert report.patterns_touched == 0
        assert_equivalent_to_remine(manager)

    def test_new_annotation_vocabulary_entry(self):
        manager = manager_over_reference()
        manager.add_annotations([(tid, "Fresh") for tid in range(6)])
        assert_equivalent_to_remine(manager)
        tokens = {manager.vocabulary.item(rule.rhs).token
                  for rule in manager.rules}
        assert "Fresh" in tokens  # frequent enough to head rules

    def test_confidence_can_drop_rule(self):
        # A2A rule A=>B: adding A to tuples without B lowers confidence.
        rows = [(("1",), ("A", "B"))] * 4 + [(("2",), ())] * 4
        manager = AnnotationRuleManager(make_relation(rows),
                                        min_support=0.3, min_confidence=0.9,
                                        validate=True)
        manager.mine()
        key = None
        for rule in manager.rules_of_kind(RuleKind.ANNOTATION_TO_ANNOTATION):
            if manager.vocabulary.item(rule.rhs).token == "B":
                key = rule.key
        assert key is not None
        report = manager.add_annotations([(4, "A"), (5, "A")])
        assert key in {dropped for dropped in report.rules_dropped}
        assert_equivalent_to_remine(manager)

    def test_report_timings_populated(self):
        manager = manager_over_reference()
        report = manager.add_annotations([(3, "A")])
        assert report.duration_seconds > 0
        assert report.event == "add-annotations"


class TestCase1AddAnnotatedTuples:
    def test_equivalence(self):
        manager = manager_over_reference()
        manager.insert_annotated([
            (("1", "2"), ("A",)),
            (("9", "9"), ("C", "D")),
        ])
        assert_equivalent_to_remine(manager)

    def test_new_rules_can_appear(self):
        manager = manager_over_reference()
        report = manager.insert_annotated(
            [(("1", "7"), ("A",))] * 10)
        assert report.event == "add-annotated-tuples"
        # The batch makes value "7" frequent and perfectly correlated
        # with annotation A -> a brand-new rule must be discovered.
        added_tokens = {
            manager.vocabulary.render(rule.lhs)
            for rule in report.rules_added
        }
        assert any("7" in tokens for tokens in added_tokens)
        assert_equivalent_to_remine(manager)


class TestCase2AddUnannotatedTuples:
    def test_equivalence(self):
        manager = manager_over_reference()
        manager.insert_unannotated([("1", "2"), ("4", "3"), ("9", "9")])
        assert_equivalent_to_remine(manager)

    def test_no_new_rules_ever(self):
        manager = manager_over_reference()
        report = manager.insert_unannotated([("1", "2")] * 10)
        assert report.rules_added == []
        assert_equivalent_to_remine(manager)

    def test_support_dilution_drops_rules(self):
        manager = manager_over_reference()
        report = manager.insert_unannotated([("x", "y")] * 40)
        assert len(report.rules_dropped) > 0
        assert len(manager.rules) == 0
        assert_equivalent_to_remine(manager)


class TestRemovalExtensions:
    def test_remove_annotations_equivalence(self):
        manager = manager_over_reference()
        manager.remove_annotations([(0, "A"), (1, "B")])
        assert_equivalent_to_remine(manager)

    def test_remove_missing_annotation_is_noop(self):
        manager = manager_over_reference()
        report = manager.remove_annotations([(3, "A")])  # tuple 3 has none
        assert report.tuples_scanned == 0
        assert_equivalent_to_remine(manager)

    def test_remove_tuples_equivalence(self):
        manager = manager_over_reference()
        manager.remove_tuples([0, 5])
        assert_equivalent_to_remine(manager)

    def test_shrinking_db_can_create_rules(self):
        # Removing tuples shrinks |DB|, raising supports of survivors.
        rows = [(("1",), ("A",))] * 3 + [(("2",), ())] * 7
        manager = AnnotationRuleManager(make_relation(rows),
                                        min_support=0.4, min_confidence=0.6,
                                        validate=True)
        manager.mine()
        assert len(manager.rules) == 0
        report = manager.remove_tuples([9, 8, 7, 6])
        assert len(report.rules_added) > 0
        assert_equivalent_to_remine(manager)

    def test_delete_then_update_sequence(self):
        manager = manager_over_reference()
        manager.remove_tuples([2])
        manager.add_annotations([(3, "B")])
        manager.insert_annotated([(("1", "3"), ("A", "B"))])
        assert_equivalent_to_remine(manager)


class TestSignature:
    def test_signature_is_vocabulary_independent(self):
        left = manager_over_reference()
        # Same logical relation, rows inserted in a different order.
        rows = list(reversed([
            (("1", "2"), ("A",)),
            (("1", "3"), ("A", "B")),
            (("1", "2"), ("A",)),
            (("4", "2"), ()),
            (("1", "3"), ("A", "B")),
            (("4", "3"), ("B",)),
            (("1", "5"), ("A",)),
            (("4", "5"), ()),
        ]))
        right = AnnotationRuleManager(make_relation(rows),
                                      min_support=0.25, min_confidence=0.6)
        right.mine()
        assert left.signature() == right.signature()

    def test_verify_against_remine_result(self):
        manager = manager_over_reference()
        result = manager.verify_against_remine()
        assert result.equivalent
        assert bool(result)
        assert "identical" in result.explain()


class TestMaxLength:
    def test_max_length_limits_lhs(self):
        manager = AnnotationRuleManager(make_relation(),
                                        min_support=0.1, min_confidence=0.5,
                                        max_length=2, validate=True)
        manager.mine()
        assert all(len(rule.lhs) <= 1 for rule in manager.rules)
        manager.add_annotations([(3, "A")])
        assert_equivalent_to_remine(manager)

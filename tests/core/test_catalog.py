"""RuleCatalog: indexes, metric orderings, query planning, explain."""

import pytest

from repro.core.catalog import (
    METRICS,
    CatalogQuery,
    RuleCatalog,
    metric_key,
)
from repro.core.events import AddAnnotations
from repro.core.rules import AssociationRule, RuleKind
from repro.errors import CatalogError
from tests.conftest import make_relation


def rule(kind=RuleKind.DATA_TO_ANNOTATION, lhs=(0,), rhs=2,
         union=3, lhs_count=4, db_size=10):
    return AssociationRule(kind=kind, lhs=lhs, rhs=rhs, union_count=union,
                           lhs_count=lhs_count, db_size=db_size)


@pytest.fixture
def rules():
    return [
        rule(lhs=(0,), rhs=2, union=4, lhs_count=6),
        rule(lhs=(0, 1), rhs=2, union=3, lhs_count=4),
        rule(lhs=(1,), rhs=3, union=5, lhs_count=8),
        rule(kind=RuleKind.ANNOTATION_TO_ANNOTATION, lhs=(2,), rhs=3,
             union=2, lhs_count=4),
    ]


@pytest.fixture
def catalog(rules):
    return RuleCatalog(rules, revision=5)


class TestRuleCatalog:
    def test_canonical_listing_order(self, catalog):
        listed = [(r.kind, r.lhs, r.rhs) for r in catalog.rules]
        assert listed == sorted(
            listed, key=lambda entry: (entry[0].value, len(entry[1]),
                                       entry[1], entry[2]))
        assert len(catalog) == 4
        assert list(catalog) == list(catalog.rules)

    def test_revision_and_stats(self, catalog):
        assert catalog.revision == 5
        stats = catalog.stats
        assert stats.revision == 5
        assert stats.rule_count == 4
        assert stats.d2a_rules == 3 and stats.a2a_rules == 1
        assert stats.rhs_index_entries == 2  # rhs 2 and rhs 3
        assert stats.as_dict()["rule_count"] == 4

    def test_key_lookup(self, catalog, rules):
        assert catalog.get(rules[0].key) == rules[0]
        assert rules[0].key in catalog
        missing = (RuleKind.DATA_TO_ANNOTATION, (9,), 2)
        assert catalog.get(missing) is None and missing not in catalog

    def test_index_lookups_match_brute_force(self, catalog, rules):
        for item in catalog.items():
            expected = [r for r in catalog.rules if item in r.union_itemset]
            assert list(catalog.mentioning(item)) == expected
        for rhs in catalog.rhs_items():
            expected = [r for r in catalog.rules if r.rhs == rhs]
            assert list(catalog.with_rhs(rhs)) == expected
        for kind in RuleKind:
            expected = [r for r in catalog.rules if r.kind is kind]
            assert list(catalog.of_kind(kind)) == expected

    def test_missing_buckets_are_empty(self, catalog):
        assert catalog.mentioning(99) == ()
        assert catalog.with_rhs(99) == ()

    def test_metric_orderings_are_presorted(self, catalog):
        for metric in METRICS:
            ordering = catalog.ordered_by(metric)
            assert list(ordering) == sorted(catalog.rules,
                                            key=metric_key(metric))
            assert catalog.top(2, by=metric) == ordering[:2]
        assert catalog.top(100) == catalog.ordered_by("confidence")

    def test_unknown_metric_rejected(self, catalog):
        with pytest.raises(CatalogError, match="unknown ordering metric"):
            catalog.ordered_by("coolness")
        with pytest.raises(CatalogError):
            catalog.top(-1)

    def test_duplicate_keys_rejected(self, rules):
        with pytest.raises(CatalogError, match="duplicate rule keys"):
            RuleCatalog(rules + [rules[0].with_counts(union_count=1)])

    def test_empty_catalog(self):
        empty = RuleCatalog()
        assert len(empty) == 0
        assert empty.items() == () and empty.rhs_items() == ()
        assert empty.top(3) == ()
        assert empty.query().all() == ()


class TestCatalogQuery:
    def test_refinement_is_immutable(self, catalog):
        base = catalog.query()
        narrowed = base.of_kind(RuleKind.DATA_TO_ANNOTATION)
        assert isinstance(narrowed, CatalogQuery)
        assert narrowed is not base
        assert len(base.all()) == 4 and len(narrowed.all()) == 3

    def test_combined_filters(self, catalog):
        results = (catalog.query().mentioning(0)
                   .of_kind(RuleKind.DATA_TO_ANNOTATION).all())
        assert [r.lhs for r in results] == [(0,), (0, 1)]
        results = catalog.query().mentioning(0).mentioning(1).all()
        assert [r.lhs for r in results] == [(0, 1)]

    def test_metric_floors(self, catalog):
        strict = catalog.query().min_confidence(0.7).all()
        assert all(r.confidence >= 0.7 for r in strict)
        assert {r.key for r in strict} == {
            r.key for r in catalog.rules if r.confidence >= 0.7}
        assert catalog.query().min_support(2.0).all() == ()

    def test_where_predicate(self, catalog):
        singles = catalog.query().where(
            lambda r: len(r.lhs) == 1, label="singleton-lhs")
        assert all(len(r.lhs) == 1 for r in singles.all())
        assert "singleton-lhs" in singles.explain().filters

    def test_conflicting_requirements_rejected(self, catalog):
        with pytest.raises(CatalogError, match="exactly one RHS"):
            catalog.query().with_rhs(2).with_rhs(3)
        with pytest.raises(CatalogError, match="can match nothing"):
            (catalog.query().of_kind(RuleKind.DATA_TO_ANNOTATION)
             .of_kind(RuleKind.ANNOTATION_TO_ANNOTATION))

    def test_ordering_and_top(self, catalog):
        by_lift = catalog.query().order_by("lift").all()
        assert list(by_lift) == list(catalog.ordered_by("lift"))
        assert catalog.query().top(2, by="lift") == by_lift[:2]
        # top() on a filtered query re-sorts the narrow match set.
        top_d2a = (catalog.query().of_kind(RuleKind.DATA_TO_ANNOTATION)
                   .top(2, by="support"))
        brute = sorted((r for r in catalog.rules
                        if r.kind is RuleKind.DATA_TO_ANNOTATION),
                       key=metric_key("support"))[:2]
        assert list(top_d2a) == brute

    def test_paging_partitions_the_ordering(self, catalog):
        ordered = catalog.query().order_by("confidence")
        pages = [ordered.page(offset, 2).all() for offset in (0, 2, 4)]
        rejoined = [r for page in pages for r in page]
        assert rejoined == list(catalog.ordered_by("confidence"))
        assert ordered.page(99, 5).all() == ()
        with pytest.raises(CatalogError):
            ordered.page(-1, 5)
        with pytest.raises(CatalogError):
            ordered.page(0, -5)

    def test_top_respects_an_existing_window(self, catalog):
        ordered = catalog.query().order_by("lift")
        windowed = ordered.page(1, 2)
        assert windowed.top(5) == ordered.all()[1:3]  # narrow, not widen
        assert windowed.top(1) == ordered.all()[1:2]
        assert ordered.top(2) == ordered.all()[:2]

    def test_count_ignores_window_and_first(self, catalog):
        windowed = catalog.query().order_by("confidence").page(1, 2)
        assert windowed.count() == 4
        assert len(windowed.all()) == 2
        best = catalog.query().order_by("confidence").first()
        assert best == catalog.ordered_by("confidence")[0]
        assert catalog.query().with_rhs(99).first() is None

    def test_explain_reports_index_selection(self, catalog):
        assert catalog.query().with_rhs(2).explain().index == "rhs"
        # RHS beats item and kind when several constraints compete.
        competing = (catalog.query().with_rhs(2).mentioning(0)
                     .of_kind(RuleKind.DATA_TO_ANNOTATION).explain())
        assert competing.index == "rhs"
        assert "mentions=0" in competing.filters
        assert "kind=data-to-annotation" in competing.filters
        assert catalog.query().mentioning(1).explain().index == "item"
        kind_only = catalog.query().of_kind(
            RuleKind.ANNOTATION_TO_ANNOTATION).explain()
        assert kind_only.index == "kind"
        presorted = catalog.query().order_by("lift").explain()
        assert presorted.index == "ordering:lift" and presorted.presorted
        assert catalog.query().explain().index == "full"

    def test_explain_probes_the_rarest_item_bucket(self, catalog):
        # Item 3 (2 rules) is rarer than item 2 (3 rules): the planner
        # must probe the smaller bucket and re-check the other item.
        explain = catalog.query().mentioning(2).mentioning(3).explain()
        assert explain.index == "item"
        assert explain.candidates == 2
        assert "mentions=2" in explain.filters

    def test_explain_counts(self, catalog):
        explain = (catalog.query().of_kind(RuleKind.DATA_TO_ANNOTATION)
                   .min_confidence(0.7).page(0, 1).explain())
        assert explain.candidates == 3
        assert explain.matched == len(
            catalog.query().of_kind(RuleKind.DATA_TO_ANNOTATION)
            .min_confidence(0.7).page(0, None).all())
        assert explain.returned <= 1
        assert "confidence>=0.7" in explain.filters
        assert explain.describe().startswith("index=kind")


class TestEngineCatalog:
    def test_memoized_per_revision(self, mined_manager):
        first = mined_manager.catalog()
        assert mined_manager.catalog() is first
        assert first.revision == mined_manager.revision == 1
        assert first.rules == tuple(mined_manager.rules.sorted_rules())

    def test_batch_invalidates_exactly_once(self, mined_manager):
        before = mined_manager.catalog()
        revision_before = mined_manager.revision
        mined_manager.apply_batch([
            AddAnnotations.build([(3, "A")]),
            AddAnnotations.build([(7, "B")]),
        ])
        assert mined_manager.revision == revision_before + 1
        after = mined_manager.catalog()
        assert after is not before
        assert after.revision == mined_manager.revision
        assert mined_manager.catalog() is after

    def test_adopt_revision_rekeys_the_catalog(self, mined_manager):
        mined_manager.adopt_revision(41)
        assert mined_manager.revision == 41
        assert mined_manager.catalog().revision == 41
        with pytest.raises(Exception, match="revision must be >= 0"):
            mined_manager.adopt_revision(-1)

    def test_unmined_engine_has_no_catalog(self):
        from repro.core.engine import engine as make_engine
        from repro.errors import MaintenanceError

        fresh = make_engine(make_relation(), min_support=0.25,
                            min_confidence=0.6)
        with pytest.raises(MaintenanceError):
            fresh.catalog()


class TestCatalogConsistencyUnderFailure:
    def test_failed_validation_does_not_serve_stale_rules(
            self, mined_manager, monkeypatch):
        """A batch that mutates the rules and then dies in the
        invariant check leaves the revision unbumped — the catalog
        must still follow the installed rule set, not the dead one."""
        from repro.errors import MaintenanceError

        stale = mined_manager.catalog()
        def boom(*args, **kwargs):
            raise MaintenanceError("forced validation failure")
        monkeypatch.setattr(mined_manager.table, "check_invariants", boom)
        with pytest.raises(MaintenanceError, match="forced validation"):
            mined_manager.apply_batch([AddAnnotations.build([(3, "B")])])

        current = mined_manager.catalog()
        assert current is not stale
        assert current.rules == tuple(mined_manager.rules.sorted_rules())
        assert mined_manager.catalog() is current  # memo still works
        # The numeric revision advanced with the installed rules, so
        # advice stamped pre-batch correctly reads as stale.
        assert mined_manager.revision == 2
        assert current.revision == 2

    def test_engine_catalog_shares_the_rulesets_indexes(self,
                                                        mined_manager):
        base = mined_manager.rules.catalog()
        stamped = mined_manager.catalog()
        assert stamped.revision == mined_manager.revision
        assert stamped.rules is base.rules
        for metric in METRICS:
            assert stamped.ordered_by(metric) is base.ordered_by(metric)

    def test_repeated_executions_keep_one_explain_record(self, catalog):
        query = catalog.query().order_by("lift")
        for _ in range(50):
            query.all()
        assert len(query._last_explain) == 1
        assert query.explain().index == "ordering:lift"
        assert len(query._last_explain) == 1


class TestSignificanceTier:
    """Chi-square / p-value metrics over the catalog's exact counts."""

    def test_hand_computed_contingency(self):
        # n=10, lhs=6, rhs=5, both=4 → a=4 b=2 c=1 d=3,
        # chi2 = n(ad−bc)² / (r₁r₂c₁c₂) = 10·100 / 600.
        catalog = RuleCatalog([rule(union=4, lhs_count=6)],
                              rhs_counts={2: 5})
        only = catalog.rules[0]
        assert catalog.chi_square_of(only) == pytest.approx(10 * 100 / 600)
        assert 0.0 < catalog.p_value_of(only) < 1.0

    def test_matches_the_interest_measures(self, catalog, rules):
        from repro.mining.interest import RuleCounts, chi_square, p_value

        for entry in rules:
            counts = RuleCounts.from_rule(entry, catalog.rhs_count(entry))
            assert catalog.chi_square_of(entry) == \
                pytest.approx(chi_square(counts))
            assert catalog.p_value_of(entry) == \
                pytest.approx(p_value(counts))

    def test_significance_is_memoized_per_key(self, catalog, rules):
        first = catalog.significance(rules[0])
        assert catalog.significance(rules[0]) is first

    def test_rhs_marginal_falls_back_then_enriches(self, rules):
        bare = RuleCatalog(rules)
        entry = rules[0]
        # No enrichment: the rule's own lower bound (clamped feasible).
        assert bare.rhs_count(entry) == entry.rhs_count_estimate
        enriched = RuleCatalog(rules, rhs_counts={entry.rhs: 7})
        assert enriched.rhs_count(entry) == 7
        assert enriched.chi_square_of(entry) != bare.chi_square_of(entry)

    def test_rhs_marginal_clamped_into_feasible_range(self, rules):
        entry = rules[0]   # union=4, db=10
        assert RuleCatalog(rules, rhs_counts={entry.rhs: 2}
                           ).rhs_count(entry) == 4    # >= union_count
        assert RuleCatalog(rules, rhs_counts={entry.rhs: 99}
                           ).rhs_count(entry) == 10   # <= db_size

    def test_metric_value_covers_the_significance_tier(self, catalog, rules):
        entry = rules[0]
        assert catalog.metric_value(entry, "chi_square") == \
            catalog.chi_square_of(entry)
        assert catalog.metric_value(entry, "p_value") == \
            catalog.p_value_of(entry)
        assert catalog.metric_value(entry, "support") == entry.support

    def test_orderings_sort_the_right_way(self, catalog):
        by_chi = catalog.ordered_by("chi_square")
        scores = [catalog.chi_square_of(r) for r in by_chi]
        assert scores == sorted(scores, reverse=True)
        by_p = catalog.ordered_by("p_value")
        p_values = [catalog.p_value_of(r) for r in by_p]
        assert p_values == sorted(p_values)
        assert catalog.top(2, by="chi_square") == by_chi[:2]

    def test_equal_scores_tie_break_deterministically(self):
        # Identical contingency tables → identical chi-square; order
        # must then fall back to confidence, then the canonical key.
        twins = [rule(lhs=(0,), union=4, lhs_count=6),
                 rule(lhs=(1,), union=4, lhs_count=6)]
        catalog = RuleCatalog(twins, rhs_counts={2: 5})
        ordered = catalog.ordered_by("chi_square")
        assert [r.lhs for r in ordered] == [(0,), (1,)]
        assert ordered == catalog.ordered_by("chi_square")

    def test_query_floors_filter_and_explain(self, catalog):
        floor = sorted(catalog.chi_square_of(r) for r in catalog)[1]
        query = catalog.query().min_chi_square(floor)
        result = query.all()
        assert result and all(
            catalog.chi_square_of(r) >= floor for r in result)
        assert f"chi_square>={floor}" in query.explain().filters

        ceiling = 0.9
        query = catalog.query().max_p_value(ceiling).order_by("p_value")
        assert all(catalog.p_value_of(r) <= ceiling for r in query.all())
        assert f"p_value<={ceiling}" in query.explain().filters

    def test_pvalue_paging_partitions_the_ordering(self, catalog):
        ordered = catalog.query().order_by("p_value")
        head = ordered.page(0, 2).all()
        tail = ordered.page(2, None).all()
        assert head + tail == catalog.ordered_by("p_value")

    def test_with_revision_new_marginals_reset_significance(self, rules):
        base = RuleCatalog(rules, revision=1, rhs_counts={2: 5, 3: 6})
        support_ordering = base.ordered_by("support")
        base.ordered_by("chi_square")
        before = base.chi_square_of(rules[0])
        clone = base.with_revision(2, rhs_counts={2: 9, 3: 6})
        # Base-metric orderings are shared; significance recomputes
        # under the new marginals.
        assert clone.ordered_by("support") is support_ordering
        assert clone.chi_square_of(rules[0]) != before
        assert base.chi_square_of(rules[0]) == before

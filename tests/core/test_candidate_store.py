"""Unit tests for the near-miss candidate rule store."""

from repro.core.candidate_store import CandidateRuleStore
from repro.core.rules import AssociationRule, RuleKind
from repro.core.stats import Thresholds


def rule(lhs=(0,), rhs=1, union=3, lhs_count=4, db=10):
    return AssociationRule(kind=RuleKind.DATA_TO_ANNOTATION,
                           lhs=tuple(lhs), rhs=rhs, union_count=union,
                           lhs_count=lhs_count, db_size=db)


class TestRefresh:
    def test_near_misses_stored(self):
        store = CandidateRuleStore()
        near = rule()
        store.refresh([near], promoted_keys=[], demoted=[])
        assert store.get(near.key) is near
        assert len(store) == 1 and near.key in store

    def test_promotion_counted(self):
        store = CandidateRuleStore()
        candidate = rule()
        store.refresh([candidate], promoted_keys=[], demoted=[])
        store.refresh([], promoted_keys=[candidate.key], demoted=[])
        assert store.stats.promotions == 1
        assert len(store) == 0

    def test_demotion_counted(self):
        store = CandidateRuleStore()
        demoted = rule()
        store.refresh([demoted], promoted_keys=[], demoted=[demoted])
        assert store.stats.demotions == 1

    def test_eviction_counted(self):
        store = CandidateRuleStore()
        gone = rule()
        store.refresh([gone], promoted_keys=[], demoted=[])
        store.refresh([], promoted_keys=[], demoted=[])
        assert store.stats.evictions == 1

    def test_refresh_counted(self):
        store = CandidateRuleStore()
        kept = rule()
        store.refresh([kept], promoted_keys=[], demoted=[])
        store.refresh([kept.with_counts(union_count=2)],
                      promoted_keys=[], demoted=[])
        assert store.stats.refreshes == 1

    def test_disabled_store_keeps_nothing(self):
        store = CandidateRuleStore(enabled=False)
        store.refresh([rule()], promoted_keys=[], demoted=[])
        assert len(store) == 0


class TestClosestToValid:
    def test_ranking_by_gap(self):
        thresholds = Thresholds(0.4, 0.8, margin=0.5)
        close = rule(lhs=(0,), union=3, lhs_count=4, db=10)   # sup .3 conf .75
        far = rule(lhs=(2,), union=2, lhs_count=4, db=10)     # sup .2 conf .50
        store = CandidateRuleStore()
        store.refresh([far, close], promoted_keys=[], demoted=[])
        ranked = store.closest_to_valid(thresholds)
        assert ranked[0].key == close.key

    def test_limit(self):
        store = CandidateRuleStore()
        rules = [rule(lhs=(item,)) for item in range(2, 7)]
        store.refresh(rules, promoted_keys=[], demoted=[])
        assert len(store.closest_to_valid(Thresholds(0.4, 0.8), limit=2)) == 2

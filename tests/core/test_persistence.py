"""Unit tests for manager snapshots (save/load)."""

import json

import pytest

from repro.core.manager import AnnotationRuleManager
from repro.core.persistence import load, restore, save, snapshot
from repro.errors import FormatError, MaintenanceError
from repro.relation.annotation import Annotation
from repro.relation.schema import Schema
from repro.relation.relation import AnnotatedRelation
from tests.conftest import make_relation


def mined_manager(relation=None):
    manager = AnnotationRuleManager(
        relation if relation is not None else make_relation(),
        min_support=0.25, min_confidence=0.6)
    manager.mine()
    return manager


class TestSnapshot:
    def test_unmined_rejected(self):
        manager = AnnotationRuleManager(make_relation(), min_support=0.3,
                                        min_confidence=0.6)
        with pytest.raises(MaintenanceError):
            snapshot(manager)

    def test_snapshot_is_json_serializable(self):
        document = snapshot(mined_manager())
        json.dumps(document)  # must not raise

    def test_snapshot_records_thresholds_and_tuples(self):
        manager = mined_manager()
        document = snapshot(manager)
        assert document["thresholds"]["min_support"] == 0.25
        assert len(document["tuples"]) == manager.relation.tid_range
        assert document["pattern_table"]


class TestRestore:
    def test_round_trip_preserves_rules(self):
        manager = mined_manager()
        manager.add_annotations([(3, "A")])
        restored = restore(snapshot(manager))
        assert restored.signature() == manager.signature()

    def test_round_trip_preserves_tombstones(self):
        manager = mined_manager()
        manager.remove_tuples([0])
        restored = restore(snapshot(manager))
        assert restored.db_size == manager.db_size
        assert not restored.relation.is_live(0)
        assert restored.signature() == manager.signature()

    def test_restored_manager_accepts_updates(self):
        restored = restore(snapshot(mined_manager()))
        restored.add_annotations([(3, "A")])
        assert restored.verify_against_remine().equivalent

    def test_schema_preserved(self):
        relation = AnnotatedRelation(Schema(["g", "t"]))
        relation.insert(("a", "b"), ("Annot_1",))
        relation.insert(("a", "c"), ("Annot_1",))
        restored = restore(snapshot(mined_manager(relation)))
        assert restored.relation.schema == Schema(["g", "t"])

    def test_annotation_metadata_preserved(self):
        relation = make_relation()
        relation.registry.register(
            Annotation("Rich", text="details", category="flag"))
        restored = restore(snapshot(mined_manager(relation)))
        assert restored.relation.registry.get("Rich").text == "details"

    def test_wrong_version_rejected(self):
        document = snapshot(mined_manager())
        document["format_version"] = 99
        with pytest.raises(FormatError):
            restore(document)

    def test_corrupted_table_detected(self):
        document = snapshot(mined_manager())
        document["pattern_table"][0]["count"] += 1
        with pytest.raises(FormatError):
            restore(document)

    def test_unknown_item_detected(self):
        document = snapshot(mined_manager())
        document["pattern_table"][0]["items"] = [["data", "ghost"]]
        with pytest.raises(FormatError):
            restore(document)


class TestFiles:
    def test_save_and_load(self, tmp_path):
        manager = mined_manager()
        path = tmp_path / "state.json"
        save(manager, path)
        restored = load(path)
        assert restored.signature() == manager.signature()
        assert restored.thresholds == manager.thresholds


class TestRevisionRoundTrip:
    """Format v2: engine revision + catalog stats survive save/load."""

    def test_snapshot_records_revision_and_catalog_stats(self):
        manager = mined_manager()
        manager.add_annotations([(3, "A")])
        document = snapshot(manager)
        assert document["format_version"] == 4
        assert document["engine_revision"] == manager.revision == 2
        stats = document["catalog"]
        assert stats == manager.catalog().stats.as_dict()
        assert stats["rule_count"] == len(manager.rules)

    def test_restore_adopts_revision_and_warms_the_catalog(self):
        manager = mined_manager()
        manager.add_annotations([(3, "A")])
        manager.add_annotations([(5, "B")])
        restored = restore(snapshot(manager))
        assert restored.revision == manager.revision == 3
        catalog = restored.catalog()
        assert catalog.revision == 3
        assert catalog.stats == manager.catalog().stats
        # Warm: the restore itself built it; the first read is a hit.
        assert restored.catalog() is catalog

    def test_restore_rejects_corrupted_catalog_stats(self):
        document = snapshot(mined_manager())
        document["catalog"]["rule_count"] += 1
        with pytest.raises(FormatError, match="catalog stats disagree"):
            restore(document)

    def test_restore_rejects_truncated_catalog_stats(self):
        document = snapshot(mined_manager())
        del document["catalog"]["rule_count"]
        with pytest.raises(FormatError, match="catalog stats disagree"):
            restore(document)
        document["catalog"] = {}
        with pytest.raises(FormatError, match="catalog stats disagree"):
            restore(document)

    def test_restore_rejects_v2_documents_missing_the_new_keys(self):
        for key in ("engine_revision", "catalog"):
            document = snapshot(mined_manager())
            del document[key]
            with pytest.raises(FormatError, match="missing its"):
                restore(document)

    def test_restore_tolerates_future_catalog_stats(self):
        document = snapshot(mined_manager())
        document["catalog"]["stat_from_the_future"] = 7
        restored = restore(document)
        assert restored.revision == document["engine_revision"]

    def test_version_1_documents_still_load(self):
        manager = mined_manager()
        document = snapshot(manager)
        document["format_version"] = 1
        del document["engine_revision"]
        del document["catalog"]
        restored = restore(document)
        assert restored.signature() == manager.signature()
        assert restored.revision == 1  # just the restore's own mine()

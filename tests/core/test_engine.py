"""EngineConfig builder, the engine() factory, and the deprecated shim."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import CorrelationEngine, engine
from repro.core.manager import AnnotationRuleManager
from repro.errors import InvalidThresholdError, MaintenanceError, MiningError
from tests.conftest import make_relation


class TestEngineConfig:
    def test_builder_round_trip(self):
        config = (EngineConfig.builder()
                  .support(0.2)
                  .confidence(0.6)
                  .margin(0.8)
                  .backend("eclat")
                  .max_length(3)
                  .counter("scan")
                  .track_candidates(False)
                  .validate()
                  .build())
        assert config == EngineConfig(
            min_support=0.2, min_confidence=0.6, margin=0.8,
            backend="eclat", max_length=3, counter="scan",
            track_candidates=False, validate=True)

    def test_builder_requires_thresholds(self):
        with pytest.raises(InvalidThresholdError, match="min_confidence"):
            EngineConfig.builder().support(0.2).build()
        with pytest.raises(InvalidThresholdError, match="min_support"):
            EngineConfig.builder().confidence(0.6).build()

    def test_bad_fraction_fails_at_build(self):
        with pytest.raises(InvalidThresholdError):
            EngineConfig.builder().support(1.5).confidence(0.6).build()

    def test_bad_max_length_rejected(self):
        with pytest.raises(InvalidThresholdError):
            EngineConfig(min_support=0.2, min_confidence=0.6, max_length=0)

    def test_replace_revalidates(self):
        config = EngineConfig(min_support=0.2, min_confidence=0.6)
        assert config.replace(backend="fpgrowth").backend == "fpgrowth"
        with pytest.raises(InvalidThresholdError):
            config.replace(min_support=0.0)

    def test_config_is_immutable(self):
        config = EngineConfig(min_support=0.2, min_confidence=0.6)
        with pytest.raises(AttributeError):
            config.min_support = 0.5


class TestEngineFactory:
    def test_engine_from_kwargs(self):
        eng = engine(make_relation(), min_support=0.25, min_confidence=0.6)
        eng.mine()
        assert eng.backend_name == "apriori-fup"
        assert len(eng.rules) > 0

    def test_engine_from_config_with_overrides(self):
        config = EngineConfig(min_support=0.25, min_confidence=0.6)
        eng = engine(make_relation(), config, backend="eclat")
        assert eng.config.backend == "eclat"
        assert eng.thresholds.min_support == 0.25

    def test_unknown_backend_fails_at_construction(self):
        with pytest.raises(MiningError, match="unknown mining backend"):
            engine(make_relation(), min_support=0.2, min_confidence=0.6,
                   backend="nope")

    def test_default_relation_is_empty(self):
        eng = engine(min_support=0.5, min_confidence=0.5)
        assert eng.db_size == 0


class TestDeprecatedShim:
    def test_shim_warns_and_still_works(self):
        with pytest.warns(DeprecationWarning, match="repro.engine"):
            manager = AnnotationRuleManager(
                make_relation(), min_support=0.25, min_confidence=0.6)
        manager.mine()
        assert manager.verify_against_remine().equivalent

    def test_shim_is_an_engine(self):
        with pytest.warns(DeprecationWarning):
            manager = AnnotationRuleManager(
                make_relation(), min_support=0.25, min_confidence=0.6,
                backend="fpgrowth")
        assert isinstance(manager, CorrelationEngine)
        assert manager.config.backend == "fpgrowth"

    def test_shim_matches_engine_results(self):
        with pytest.warns(DeprecationWarning):
            manager = AnnotationRuleManager(
                make_relation(), min_support=0.25, min_confidence=0.6)
        manager.mine()
        eng = engine(make_relation(), min_support=0.25, min_confidence=0.6)
        eng.mine()
        assert manager.signature() == eng.signature()


class TestValidationReporting:
    def test_validation_duration_recorded(self):
        eng = engine(make_relation(), min_support=0.25, min_confidence=0.6,
                     validate=True)
        report = eng.mine()
        assert report.validation_seconds > 0.0
        report = eng.add_annotations([(3, "A")])
        assert report.validation_seconds > 0.0

    def test_validation_off_records_zero(self):
        eng = engine(make_relation(), min_support=0.25, min_confidence=0.6)
        report = eng.mine()
        assert report.validation_seconds == 0.0

    def test_invariant_failure_carries_event_context(self, monkeypatch):
        eng = engine(make_relation(), min_support=0.25, min_confidence=0.6,
                     validate=True)
        eng.mine()

        def broken_check(*, floor=None):
            raise MaintenanceError("closure violated (synthetic)")

        monkeypatch.setattr(eng.table, "check_invariants", broken_check)
        with pytest.raises(MaintenanceError) as excinfo:
            eng.add_annotations([(3, "A")])
        message = str(excinfo.value)
        assert "add-annotations" in message
        assert "db_size=8" in message
        assert "backend=apriori-fup" in message
        assert "closure violated (synthetic)" in message
        assert isinstance(excinfo.value.__cause__, MaintenanceError)

"""Unit tests for multi-level rule mining (Han & Fu style)."""

import pytest

from repro.core.manager import AnnotationRuleManager
from repro.core.multilevel import MultiLevelMiner
from repro.errors import GeneralizationError
from repro.generalization.engine import Generalizer
from repro.generalization.hierarchy import ConceptHierarchy
from repro.generalization.rules import (
    GeneralizationRule,
    GeneralizationRuleSet,
    IdMatcher,
)
from tests.conftest import make_relation


def build_manager():
    """Two sibling concepts under one parent; the parent is frequent
    everywhere the children are, so parent rules have higher support."""
    rows = []
    rows += [(("1", "2"), ("Annot_a",))] * 3   # concept A
    rows += [(("1", "2"), ("Annot_b",))] * 3   # concept B
    rows += [(("1", "3"), ("Annot_a",))] * 2
    rows += [(("4", "2"), ())] * 4
    relation = make_relation(rows)
    hierarchy = ConceptHierarchy.from_edges([
        ("ConceptA", "Parent"), ("ConceptB", "Parent")])
    generalizer = Generalizer(
        relation.registry,
        GeneralizationRuleSet([
            GeneralizationRule("ConceptA",
                               IdMatcher(frozenset({"Annot_a"}))),
            GeneralizationRule("ConceptB",
                               IdMatcher(frozenset({"Annot_b"}))),
        ]),
        hierarchy)
    manager = AnnotationRuleManager(relation, min_support=0.15,
                                    min_confidence=0.5,
                                    generalizer=generalizer)
    manager.mine()
    return manager, hierarchy


class TestConstruction:
    def test_requires_generalizer(self):
        manager = AnnotationRuleManager(make_relation(), min_support=0.3,
                                        min_confidence=0.6)
        manager.mine()
        with pytest.raises(GeneralizationError):
            MultiLevelMiner(manager, ConceptHierarchy())

    def test_validates_tolerance(self):
        manager, hierarchy = build_manager()
        with pytest.raises(GeneralizationError):
            MultiLevelMiner(manager, hierarchy, redundancy_tolerance=-1)


class TestLeveledRules:
    def test_levels_assigned(self):
        manager, hierarchy = build_manager()
        miner = MultiLevelMiner(manager, hierarchy, base_support=0.3)
        leveled = miner.leveled_rules()
        assert leveled, "label rules expected"
        by_label = {}
        for entry in leveled:
            label = manager.vocabulary.item(entry.rule.rhs).token
            by_label.setdefault(label, entry.level)
        if "Parent" in by_label:
            assert by_label["Parent"] == 0
        if "ConceptA" in by_label:
            assert by_label["ConceptA"] == 1

    def test_per_level_floor_is_decayed(self):
        manager, hierarchy = build_manager()
        miner = MultiLevelMiner(manager, hierarchy, base_support=0.4,
                                decay=0.5)
        for entry in miner.leveled_rules():
            label = manager.vocabulary.item(entry.rule.rhs).token
            expected = 0.4 * (0.5 ** hierarchy.level_of(label))
            assert entry.min_support_at_level == pytest.approx(expected)
            assert entry.rule.support >= expected - 1e-9

    def test_strict_base_excludes_deep_levels(self):
        """At a base support only the parent can meet (ConceptA sits at
        5/12 ≈ 0.417), child rules must be filtered out at decay=1.0
        (no per-level reduction) but kept at decay=0.5."""
        manager, hierarchy = build_manager()
        strict = MultiLevelMiner(manager, hierarchy, base_support=0.45,
                                 decay=1.0)
        strict_labels = {
            manager.vocabulary.item(entry.rule.rhs).token
            for entry in strict.leveled_rules()}
        relaxed = MultiLevelMiner(manager, hierarchy, base_support=0.45,
                                  decay=0.5)
        relaxed_labels = {
            manager.vocabulary.item(entry.rule.rhs).token
            for entry in relaxed.leveled_rules()}
        assert strict_labels <= relaxed_labels
        assert "ConceptA" not in strict_labels
        assert "Parent" in strict_labels
        assert "ConceptA" in relaxed_labels

    def test_raw_annotation_rules_ignored(self):
        manager, hierarchy = build_manager()
        miner = MultiLevelMiner(manager, hierarchy, base_support=0.1)
        for entry in miner.leveled_rules():
            item = manager.vocabulary.item(entry.rule.rhs)
            assert item.kind.name == "LABEL"


class TestRedundancy:
    def test_child_rule_pruned_when_parent_explains_it(self):
        manager, hierarchy = build_manager()
        miner = MultiLevelMiner(manager, hierarchy, base_support=0.1,
                                redundancy_tolerance=1.0)  # prune all kids
        kept_labels = {
            manager.vocabulary.item(entry.rule.rhs).token
            for entry in miner.non_redundant()}
        # With tolerance 1.0 every child with a same-LHS parent rule
        # is redundant; only parent-level (or orphan-LHS) rules remain.
        leveled_labels = {
            manager.vocabulary.item(entry.rule.rhs).token
            for entry in miner.leveled_rules()}
        if "Parent" in leveled_labels:
            assert "Parent" in kept_labels

    def test_zero_tolerance_keeps_informative_children(self):
        manager, hierarchy = build_manager()
        miner = MultiLevelMiner(manager, hierarchy, base_support=0.1,
                                redundancy_tolerance=0.0)
        kept = miner.non_redundant()
        leveled = miner.leveled_rules()
        # Exact-confidence duplicates only are pruned.
        assert len(kept) <= len(leveled)

    def test_by_level_grouping(self):
        manager, hierarchy = build_manager()
        miner = MultiLevelMiner(manager, hierarchy, base_support=0.1)
        grouped = miner.by_level()
        for level, entries in grouped.items():
            assert all(entry.level == level for entry in entries)
            confidences = [entry.rule.confidence for entry in entries]
            assert confidences == sorted(confidences, reverse=True)

"""Unit tests for the frequent-pattern table."""

import pytest

from repro.core.pattern_table import (
    FrequentPatternTable,
    PatternClass,
    classify,
)
from repro.errors import MaintenanceError
from repro.mining.itemsets import ItemVocabulary


@pytest.fixture
def vocabulary():
    vocab = ItemVocabulary()
    vocab.intern_data("x")        # 0
    vocab.intern_data("y")        # 1
    vocab.intern_annotation("A")  # 2
    vocab.intern_annotation("B")  # 3
    vocab.intern_label("L")       # 4
    return vocab


class TestClassify:
    def test_partition(self, vocabulary):
        assert classify((0, 1), vocabulary) is PatternClass.DATA_ONLY
        assert classify((0, 2), vocabulary) is PatternClass.SINGLE_ANNOTATION
        assert classify((2, 3, 4), vocabulary) is PatternClass.ANNOTATION_ONLY
        assert classify((0, 2, 3), vocabulary) is PatternClass.IRRELEVANT

    def test_single_annotation_alone_is_annotation_only(self, vocabulary):
        assert classify((2,), vocabulary) is PatternClass.ANNOTATION_ONLY


class TestTable:
    def test_set_and_count(self, vocabulary):
        table = FrequentPatternTable(vocabulary)
        table.set_count((0,), 5)
        assert table.count((0,)) == 5
        assert table.count((1,)) is None
        assert (0,) in table and len(table) == 1

    def test_negative_count_rejected(self, vocabulary):
        table = FrequentPatternTable(vocabulary)
        with pytest.raises(MaintenanceError):
            table.set_count((0,), -1)

    def test_replace(self, vocabulary):
        table = FrequentPatternTable(vocabulary)
        table.replace({(0,): 3, (0, 2): 2})
        assert set(table) == {(0,), (0, 2)}

    def test_subsets_in(self, vocabulary):
        table = FrequentPatternTable(vocabulary)
        table.replace({(0,): 3, (2,): 2, (0, 2): 2})
        found = set(table.subsets_in(frozenset({0, 2})))
        assert found == {(0,), (2,), (0, 2)}

    def test_frequent_subpatterns_by_class(self, vocabulary):
        table = FrequentPatternTable(vocabulary)
        table.replace({(0,): 3, (1,): 3, (0, 1): 2, (2,): 2, (0, 2): 2})
        data_patterns = table.frequent_subpatterns(
            frozenset({0, 1, 2}), PatternClass.DATA_ONLY)
        assert set(data_patterns) == {(0,), (1,), (0, 1)}

    def test_prune_below(self, vocabulary):
        table = FrequentPatternTable(vocabulary)
        table.replace({(0,): 5, (1,): 2, (0, 1): 2})
        pruned = table.prune_below(3)
        assert pruned == [(0, 1), (1,)]  # sorted tuple order
        assert set(table) == {(0,)}


class TestInvariants:
    def test_closed_table_passes(self, vocabulary):
        table = FrequentPatternTable(vocabulary)
        table.replace({(0,): 3, (2,): 3, (0, 2): 2})
        table.check_invariants(floor=2)

    def test_missing_subset_fails(self, vocabulary):
        table = FrequentPatternTable(vocabulary)
        table.replace({(0, 2): 2, (0,): 2})
        with pytest.raises(MaintenanceError):
            table.check_invariants()

    def test_floor_violation_fails(self, vocabulary):
        table = FrequentPatternTable(vocabulary)
        table.replace({(0,): 1})
        with pytest.raises(MaintenanceError):
            table.check_invariants(floor=2)

    def test_irrelevant_pattern_fails(self, vocabulary):
        table = FrequentPatternTable(vocabulary)
        table.replace({(0,): 3, (2,): 3, (3,): 3, (0, 2): 3, (0, 3): 3,
                       (2, 3): 3, (0, 2, 3): 3})
        with pytest.raises(MaintenanceError):
            table.check_invariants()

    def test_stats(self, vocabulary):
        table = FrequentPatternTable(vocabulary)
        table.replace({(0,): 3, (0, 1): 2, (2,): 3, (0, 2): 2, (2, 3): 2})
        stats = table.stats()
        assert stats["total"] == 5
        assert stats[PatternClass.DATA_ONLY.value] == 2
        assert stats[PatternClass.SINGLE_ANNOTATION.value] == 1
        assert stats[PatternClass.ANNOTATION_ONLY.value] == 2

"""Unit tests for rule timelines and the Figure 11 direction matrix."""

import pytest

from repro.core.events import AddAnnotations, AddUnannotatedTuples
from repro.core.manager import AnnotationRuleManager
from repro.core.rules import RuleKind
from repro.core.timeline import Direction, TimelineRecorder
from repro.errors import MaintenanceError
from tests.conftest import make_relation


def recorder_over(rows=None, **thresholds):
    manager = AnnotationRuleManager(
        make_relation(rows),
        min_support=thresholds.get("min_support", 0.25),
        min_confidence=thresholds.get("min_confidence", 0.6))
    manager.mine()
    return TimelineRecorder(manager)


class TestDirection:
    def test_classification(self):
        assert Direction.of(0.5, 0.6) is Direction.UP
        assert Direction.of(0.5, 0.4) is Direction.DOWN
        assert Direction.of(0.5, 0.5) is Direction.FLAT
        assert Direction.of(0.5, 0.5 + 1e-15) is Direction.FLAT


class TestRecorder:
    def test_requires_mined_manager(self):
        manager = AnnotationRuleManager(make_relation(), min_support=0.3,
                                        min_confidence=0.6)
        with pytest.raises(MaintenanceError):
            TimelineRecorder(manager)

    def test_initial_snapshot_registers_all_rules(self):
        recorder = recorder_over()
        assert len(recorder.trajectories) == len(recorder.manager.rules)
        for trajectory in recorder.trajectories.values():
            assert trajectory.born_at == 0
            assert trajectory.alive

    def test_apply_records_points(self):
        recorder = recorder_over()
        recorder.apply(AddAnnotations.build([(3, "A")]))
        survivor = next(iter(recorder.living_rules()))
        assert len(survivor.points) == 2
        assert survivor.points[1].event_name == "add-annotations"

    def test_rule_death_recorded(self):
        recorder = recorder_over()
        # Heavy dilution kills every rule.
        recorder.apply(AddUnannotatedTuples.build([("x", "y")] * 60))
        assert recorder.living_rules() == []
        for trajectory in recorder.dead_rules():
            assert trajectory.died_at == 1

    def test_rule_birth_after_event(self):
        recorder = recorder_over()
        before = set(recorder.trajectories)
        recorder.apply(AddAnnotations.build(
            [(tid, "Fresh") for tid in range(6)]))
        born = [trajectory for key, trajectory
                in recorder.trajectories.items() if key not in before]
        assert any(trajectory.born_at == 1 for trajectory in born)

    def test_resurrection_clears_death(self):
        rows = [(("1",), ("A",))] * 3 + [(("2",), ())] * 5
        recorder = recorder_over(rows, min_support=0.3)
        key = next(iter(recorder.trajectories))
        # Kill by dilution, resurrect by deletion.
        recorder.apply(AddUnannotatedTuples.build([("3",)] * 6))
        assert not recorder.trajectory(key).alive
        from repro.core.events import RemoveTuples
        recorder.apply(RemoveTuples.build(range(8, 14)))
        assert recorder.trajectory(key).alive

    def test_statistic_series(self):
        recorder = recorder_over()
        recorder.apply(AddAnnotations.build([(3, "A")]))
        trajectory = next(iter(recorder.living_rules()))
        series = trajectory.statistic_series("support")
        assert len(series) == len(trajectory.points)
        with pytest.raises(MaintenanceError):
            trajectory.statistic_series("lift")

    def test_unknown_key(self):
        recorder = recorder_over()
        with pytest.raises(MaintenanceError):
            recorder.trajectory((RuleKind.DATA_TO_ANNOTATION, (999,), 998))


class TestDirectionMatrix:
    def test_case3_d2a_never_decreases(self):
        """Paper Figure 11: Case 3 cannot lower D2A support/confidence."""
        recorder = recorder_over()
        recorder.apply(AddAnnotations.build([(3, "A"), (5, "A")]))
        matrix = recorder.direction_matrix()
        for statistic in ("support", "confidence"):
            directions = matrix.get(("add-annotations",
                                     RuleKind.DATA_TO_ANNOTATION,
                                     statistic), set())
            assert Direction.DOWN not in directions

    def test_case2_support_never_increases(self):
        recorder = recorder_over()
        recorder.apply(AddUnannotatedTuples.build([("1", "2")] * 3))
        matrix = recorder.direction_matrix()
        for kind in RuleKind:
            directions = matrix.get(("add-unannotated-tuples", kind,
                                     "support"), set())
            assert Direction.UP not in directions

    def test_case2_a2a_confidence_flat(self):
        recorder = recorder_over()
        recorder.apply(AddUnannotatedTuples.build([("9", "9")] * 3))
        directions = recorder.direction_matrix().get(
            ("add-unannotated-tuples",
             RuleKind.ANNOTATION_TO_ANNOTATION, "confidence"), set())
        assert directions <= {Direction.FLAT}

    def test_render_matrix_format(self):
        recorder = recorder_over()
        recorder.apply(AddAnnotations.build([(3, "A")]))
        text = recorder.render_matrix()
        assert "event" in text.splitlines()[0]
        assert "add-annotations" in text

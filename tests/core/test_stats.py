"""Unit tests for thresholds and the near-miss margin."""

import pytest

from repro.core.rules import AssociationRule, RuleKind
from repro.core.stats import Thresholds
from repro.errors import InvalidThresholdError


def rule(union, lhs_count, db):
    return AssociationRule(kind=RuleKind.DATA_TO_ANNOTATION, lhs=(0,),
                           rhs=1, union_count=union, lhs_count=lhs_count,
                           db_size=db)


class TestValidation:
    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5, float("nan")])
    def test_bad_support(self, bad):
        with pytest.raises(InvalidThresholdError):
            Thresholds(bad, 0.5)

    @pytest.mark.parametrize("bad", [0.0, 2.0])
    def test_bad_confidence(self, bad):
        with pytest.raises(InvalidThresholdError):
            Thresholds(0.5, bad)

    def test_bad_margin(self):
        with pytest.raises(InvalidThresholdError):
            Thresholds(0.5, 0.5, margin=0.0)


class TestCounts:
    def test_support_count(self):
        thresholds = Thresholds(0.4, 0.8)
        assert thresholds.support_count(10) == 4
        assert thresholds.support_count(11) == 5  # ceil(4.4)

    def test_keep_count_is_margined(self):
        thresholds = Thresholds(0.4, 0.8, margin=0.5)
        assert thresholds.keep_support == pytest.approx(0.2)
        assert thresholds.keep_count(10) == 2

    def test_keep_count_floor_of_one(self):
        assert Thresholds(0.1, 0.5).keep_count(0) == 1


class TestRuleClassification:
    def test_valid_rule(self):
        thresholds = Thresholds(0.4, 0.8)
        assert thresholds.is_valid(rule(4, 5, 10))

    def test_exact_boundaries_are_valid(self):
        thresholds = Thresholds(0.4, 0.8)
        assert thresholds.is_valid(rule(4, 5, 10))   # support == 0.4
        assert thresholds.is_valid(rule(8, 10, 20))  # confidence == 0.8

    def test_low_support_invalid(self):
        thresholds = Thresholds(0.4, 0.8)
        assert not thresholds.is_valid(rule(3, 3, 10))

    def test_low_confidence_invalid(self):
        thresholds = Thresholds(0.4, 0.8)
        assert not thresholds.is_valid(rule(4, 6, 10))

    def test_near_miss_band(self):
        thresholds = Thresholds(0.4, 0.8, margin=0.75)
        # support 0.3 is inside [0.3, 0.4), confidence fine.
        candidate = rule(3, 3, 10)
        assert thresholds.is_near_miss(candidate)
        assert not thresholds.is_valid(candidate)

    def test_below_band_is_not_near_miss(self):
        thresholds = Thresholds(0.4, 0.8, margin=0.75)
        assert not thresholds.is_near_miss(rule(2, 2, 10))  # support 0.2

    def test_valid_rule_is_not_near_miss(self):
        thresholds = Thresholds(0.4, 0.8)
        assert not thresholds.is_near_miss(rule(5, 5, 10))

    def test_with_margin(self):
        thresholds = Thresholds(0.4, 0.8).with_margin(0.9)
        assert thresholds.margin == 0.9
        assert thresholds.min_support == 0.4

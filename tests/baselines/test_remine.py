"""Unit tests for the full re-mining baseline."""

from repro.baselines.remine import remine, signatures_match
from repro.core.manager import AnnotationRuleManager
from tests.conftest import make_relation


class TestRemine:
    def test_produces_mined_manager(self):
        baseline = remine(make_relation(), min_support=0.25,
                          min_confidence=0.6)
        assert baseline.is_mined
        assert len(baseline.rules) > 0

    def test_does_not_mutate_source_relation(self):
        relation = make_relation()
        version = relation.version
        remine(relation, min_support=0.25, min_confidence=0.6)
        assert relation.version == version

    def test_incremental_manager_unaffected(self):
        relation = make_relation()
        manager = AnnotationRuleManager(relation, min_support=0.25,
                                        min_confidence=0.6)
        manager.mine()
        remine(relation, min_support=0.25, min_confidence=0.6)
        # Incremental manager must still accept updates (no version drift).
        manager.add_annotations([(3, "A")])

    def test_signatures_match_helper(self):
        relation = make_relation()
        left = remine(relation, min_support=0.25, min_confidence=0.6)
        right = remine(relation, min_support=0.25, min_confidence=0.6)
        assert signatures_match(left, right)
        different = remine(relation, min_support=0.25, min_confidence=0.9)
        assert not signatures_match(left, different)

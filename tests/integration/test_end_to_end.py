"""Integration tests: full pipelines over synthetic workloads."""

import pytest

from repro.core.manager import AnnotationRuleManager
from repro.core.rules import RuleKind
from repro.exploitation.curation import CurationSession
from repro.exploitation.insert_advisor import InsertAdvisor
from repro.exploitation.ranking import rank
from repro.exploitation.recommender import MissingAnnotationRecommender
from repro.generalization.engine import Generalizer
from repro.generalization.rules import (
    GeneralizationRule,
    GeneralizationRuleSet,
    IdMatcher,
)
from repro.synth import workloads
from repro.synth.generator import generate_annotation_batch, hide_annotations
from tests.conftest import assert_equivalent_to_remine


class TestWorkloadLifecycle:
    """Mine -> update -> verify, over a realistic synthetic workload."""

    @pytest.fixture
    def manager(self):
        workload = workloads.dev_scale()
        manager = AnnotationRuleManager(
            workload.relation,
            min_support=workload.min_support,
            min_confidence=workload.min_confidence,
            validate=True)
        manager.mine()
        return manager

    def test_mixed_event_sequence_stays_equivalent(self, manager):
        relation = manager.relation
        manager.add_annotations(
            generate_annotation_batch(relation, size=25, seed=1))
        manager.insert_annotated([
            (("c0v0", "c1v0", "c2v0", "c3v0"), ("Annot_1",))] * 5)
        manager.insert_unannotated([("c0v5", "c1v5", "c2v5", "c3v5")] * 5)
        manager.remove_annotations([(0, annotation)
                                    for annotation in sorted(
                                        relation.tuple(0).annotation_ids)]
                                   or [(0, "Annot_1")])
        manager.remove_tuples([1, 2])
        manager.add_annotations(
            generate_annotation_batch(relation, size=25, seed=2))
        assert_equivalent_to_remine(manager)

    def test_many_small_batches_equal_one_large(self):
        first = workloads.dev_scale()
        second = workloads.dev_scale()
        small = AnnotationRuleManager(
            first.relation, min_support=0.3, min_confidence=0.7)
        small.mine()
        large = AnnotationRuleManager(
            second.relation, min_support=0.3, min_confidence=0.7)
        large.mine()
        batch = generate_annotation_batch(first.relation, size=40, seed=7)
        for pair in batch:
            small.add_annotations([pair])
        large.add_annotations(batch)
        assert small.signature() == large.signature()

    def test_candidate_store_promotion_happens(self, manager):
        # Push near-misses over the line with a targeted batch and check
        # the store records promotions.
        relation = manager.relation
        before = manager.candidates.stats.promotions
        for seed in range(3, 10):
            manager.add_annotations(
                generate_annotation_batch(relation, size=30, seed=seed))
        # Promotions are workload-dependent; the loop above adds enough
        # annotations that at least one near-miss should have crossed.
        assert manager.candidates.stats.promotions >= before
        assert_equivalent_to_remine(manager)


class TestGeneralizationPipeline:
    def test_sparse_concept_only_visible_generalized(self):
        workload = workloads.sparse_annotations(n_tuples=600)
        relation = workload.relation
        raw = AnnotationRuleManager(
            relation, min_support=workload.min_support,
            min_confidence=workload.min_confidence)
        raw.mine()
        raw_rule_count = len(raw.rules)

        variants = frozenset(
            annotation.annotation_id for annotation in relation.registry
            if annotation.annotation_id.startswith("Annot_inv"))
        generalizer = Generalizer(
            relation.registry,
            GeneralizationRuleSet(
                [GeneralizationRule("Invalidation", IdMatcher(variants))]))
        generalized = AnnotationRuleManager(
            relation.copy(), min_support=workload.min_support,
            min_confidence=workload.min_confidence,
            generalizer=generalizer)
        generalized.mine()
        label_rules = [
            rule for rule in generalized.rules
            if generalized.vocabulary.item(rule.rhs).token == "Invalidation"
        ]
        assert label_rules, "label-level rule should surface"
        assert len(generalized.rules) > raw_rule_count


class TestExploitationPipeline:
    def test_hidden_annotations_recovered(self):
        workload = workloads.dev_scale(n_tuples=600)
        relation = workload.relation
        hidden = set(hide_annotations(relation, fraction=0.15, seed=3))
        manager = AnnotationRuleManager(relation, min_support=0.25,
                                        min_confidence=0.6)
        manager.mine()
        recommendations = rank(
            MissingAnnotationRecommender(manager).scan())
        predicted = {(recommendation.tid, recommendation.annotation_id)
                     for recommendation in recommendations}
        recovered = predicted & hidden
        # The planted structure is strong; a healthy fraction of the
        # hidden attachments must be recommended back.
        assert len(recovered) >= len(hidden) * 0.3

    def test_curation_commit_then_advisor(self):
        workload = workloads.dev_scale(n_tuples=400)
        manager = AnnotationRuleManager(workload.relation,
                                        min_support=0.25,
                                        min_confidence=0.6)
        manager.mine()
        advisor = InsertAdvisor(manager).install()
        session = CurationSession(manager)
        recommendations = MissingAnnotationRecommender(manager).scan()
        session.accept_all(recommendations[:20], min_confidence=0.8)
        session.commit()
        manager.insert_unannotated([("c0v0", "c1v0", "c2v0", "c3v0")])
        drained = advisor.drain()
        assert isinstance(drained, list)
        assert_equivalent_to_remine(manager)


class TestRuleKindsSeparation:
    def test_d2a_lhs_is_data_a2a_lhs_is_annotations(self):
        workload = workloads.dense_correlations(n_tuples=600)
        manager = AnnotationRuleManager(
            workload.relation, min_support=0.2, min_confidence=0.6)
        manager.mine()
        for rule in manager.rules_of_kind(RuleKind.DATA_TO_ANNOTATION):
            assert all(not manager.vocabulary.is_annotation_like(item)
                       for item in rule.lhs)
            assert manager.vocabulary.is_annotation_like(rule.rhs)
        for rule in manager.rules_of_kind(
                RuleKind.ANNOTATION_TO_ANNOTATION):
            assert all(manager.vocabulary.is_annotation_like(item)
                       for item in rule.lhs)

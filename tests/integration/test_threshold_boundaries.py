"""Threshold boundary rounding, unit-level and through every backend.

``min_count_for`` and ``meets_fraction`` define the support floor at
exact ``fraction * total`` products (0.3 × 10, 1/3 × 3, …), where naive
``ceil`` arithmetic flips on float noise.  These tests pin the boundary
at the helper level and then assert the *same* boundary is applied by
all three mining backends and all counter strategies: a pattern sitting
exactly on the floor is frequent everywhere or nowhere.
"""

import pytest

from repro._util import EPSILON, meets_fraction, min_count_for
from repro.core.engine import engine
from tests.conftest import make_relation

ALL_BACKENDS = ("apriori-fup", "eclat", "fpgrowth")

#: (fraction, total, expected floor) at exact-product boundaries.
EXACT_BOUNDARIES = [
    (0.3, 10, 3),        # 0.3 * 10 = 3.0 despite 0.3 being inexact
    (1 / 3, 3, 1),       # 1/3 * 3 = 0.999... -> exactly 1
    (1 / 3, 6, 2),
    (2 / 3, 3, 2),
    (0.1, 10, 1),
    (0.25, 8, 2),
    (0.2, 5, 1),
    (0.7, 10, 7),
]


class TestHelperBoundaries:
    @pytest.mark.parametrize("fraction,total,floor", EXACT_BOUNDARIES)
    def test_min_count_at_exact_products(self, fraction, total, floor):
        assert min_count_for(fraction, total) == floor

    @pytest.mark.parametrize("fraction,total,floor", EXACT_BOUNDARIES)
    def test_meets_fraction_agrees_at_the_edge(self, fraction, total, floor):
        assert meets_fraction(floor, total, fraction)
        assert not meets_fraction(floor - 1, total, fraction)

    def test_epsilon_absorbs_float_noise_only(self):
        # A count one below an exact product must not sneak in through
        # the epsilon, and the epsilon itself is far below 1 count.
        assert EPSILON < 1e-6
        assert not meets_fraction(2, 10, 0.3)
        assert min_count_for(0.3 + 1e-3, 10) == 4


def _ten_tuple_relation():
    """10 tuples; ("1", A) co-occurs in exactly 3 — support 3/10."""
    rows = [
        (("1", "2"), ("A",)),
        (("1", "3"), ("A",)),
        (("1", "4"), ("A",)),
        (("5", "2"), ("B",)),
        (("5", "3"), ("B",)),
        (("5", "4"), ()),
        (("6", "2"), ()),
        (("6", "3"), ()),
        (("6", "4"), ()),
        (("7", "2"), ()),
    ]
    return make_relation(rows)


def _three_tuple_relation():
    """3 tuples; ("1", A) occurs once — support exactly 1/3."""
    rows = [
        (("1", "2"), ("A",)),
        (("3", "4"), ()),
        (("5", "6"), ()),
    ]
    return make_relation(rows)


def _pattern_tokens(eng):
    return {
        tuple(sorted(eng.vocabulary.item(item).token for item in itemset))
        for itemset in eng.table
    }


class TestBackendBoundaryAgreement:
    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_exact_three_tenths_is_frequent(self, backend_name):
        eng = engine(_ten_tuple_relation(), min_support=0.3,
                     min_confidence=0.5, margin=1.0, backend=backend_name,
                     validate=True)
        eng.mine()
        assert ("1", "A") in {
            tokens for tokens in _pattern_tokens(eng) if len(tokens) == 2}

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_just_above_the_exact_product_is_not(self, backend_name):
        eng = engine(_ten_tuple_relation(), min_support=0.3 + 1e-3,
                     min_confidence=0.5, margin=1.0, backend=backend_name,
                     validate=True)
        eng.mine()
        assert ("1", "A") not in _pattern_tokens(eng)

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_exact_one_third_of_three(self, backend_name):
        eng = engine(_three_tuple_relation(), min_support=1 / 3,
                     min_confidence=0.5, margin=1.0, backend=backend_name,
                     validate=True)
        eng.mine()
        assert ("1", "A") in _pattern_tokens(eng)

    def test_all_backends_and_counters_agree_at_boundaries(self):
        """Identical tables at the boundary thresholds everywhere —
        including the bitmap (vertical) counting substrate."""
        for relation_factory, min_support in (
                (_ten_tuple_relation, 0.3),
                (_three_tuple_relation, 1 / 3)):
            reference = None
            for backend_name in ALL_BACKENDS:
                for counter in ("auto", "vertical"):
                    eng = engine(relation_factory(), min_support=min_support,
                                 min_confidence=0.5, margin=1.0,
                                 backend=backend_name, counter=counter,
                                 validate=True)
                    eng.mine()
                    tokens = _pattern_tokens(eng)
                    if reference is None:
                        reference = tokens
                    assert tokens == reference, (
                        f"{backend_name}/{counter} drew a different "
                        f"support boundary at {min_support}")

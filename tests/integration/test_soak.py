"""Soak test: long random event streams through the manager.

This is the production scenario the incremental engine targets — a
database that never stops changing.  A seeded stream of mixed events is
pushed through the manager; equivalence with a full re-mine is checked
at checkpoints (checking after every single event would re-run Apriori
hundreds of times and hide real regressions in noise).
"""

import pytest

from repro.core.manager import AnnotationRuleManager
from repro.synth.streams import EventStream, StreamConfig
from repro.synth.workloads import dev_scale
from tests.conftest import assert_equivalent_to_remine


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_soak_mixed_stream(seed):
    workload = dev_scale(n_tuples=120, seed=seed)
    manager = AnnotationRuleManager(workload.relation, min_support=0.25,
                                    min_confidence=0.6, validate=True)
    manager.mine()
    stream = EventStream(workload.relation, StreamConfig(
        seed=seed, batch_size=6))
    for step in range(30):
        manager.apply(stream.draw())
        if step % 10 == 9:
            assert_equivalent_to_remine(manager)
    assert_equivalent_to_remine(manager)
    assert len(manager.log) == 30
    # Deep audit: every redundant structure still agrees.
    from repro.core.audit import audit
    report = audit(manager)
    assert report.consistent, report.summary()


def test_soak_heavy_annotation_churn():
    """Case 3 and its inverse dominating — the paper's central loop."""
    workload = dev_scale(n_tuples=100, seed=7)
    manager = AnnotationRuleManager(workload.relation, min_support=0.2,
                                    min_confidence=0.6, validate=True)
    manager.mine()
    stream = EventStream(workload.relation, StreamConfig(
        weight_add_annotations=5, weight_remove_annotations=3,
        weight_insert_annotated=0, weight_insert_unannotated=0,
        weight_remove_tuples=0, batch_size=8, seed=4))
    for _ in range(25):
        manager.apply(stream.draw())
    assert_equivalent_to_remine(manager)


def test_soak_growing_then_shrinking():
    """Database grows by inserts then shrinks by deletes; floors move
    in both directions and the pattern table must track exactly."""
    workload = dev_scale(n_tuples=80, seed=5)
    manager = AnnotationRuleManager(workload.relation, min_support=0.25,
                                    min_confidence=0.6, validate=True)
    manager.mine()
    grow = EventStream(workload.relation, StreamConfig(
        weight_add_annotations=1, weight_insert_annotated=4,
        weight_insert_unannotated=4, weight_remove_annotations=0,
        weight_remove_tuples=0, batch_size=10, seed=6))
    for _ in range(10):
        manager.apply(grow.draw())
    assert_equivalent_to_remine(manager)

    shrink = EventStream(workload.relation, StreamConfig(
        weight_add_annotations=1, weight_insert_annotated=0,
        weight_insert_unannotated=0, weight_remove_annotations=1,
        weight_remove_tuples=4, batch_size=10, seed=8))
    for _ in range(10):
        manager.apply(shrink.draw())
    assert_equivalent_to_remine(manager)

"""The shipped examples must run clean end to end.

Each example's ``main()`` is imported and executed with stdout captured;
a broken example is a broken quickstart for every new user, so these run
in the regular suite (the one slow example is downscaled via its module
globals rather than skipped).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "Incremental == full re-mine: True" in out
        assert "==>" in out

    def test_biocuration(self, capsys):
        load_example("biocuration").main()
        out = capsys.readouterr().out
        assert "Incremental state still exact: True" in out
        assert "Invalidation" in out

    def test_file_workflow(self, capsys):
        load_example("file_workflow").main()
        out = capsys.readouterr().out
        assert "Incremental state exact: True" in out
        assert "Wrote" in out

    def test_annotated_views(self, capsys):
        load_example("annotated_views").main()
        out = capsys.readouterr().out
        assert "restored: True" in out
        assert "Annot_recall" in out

    def test_serving_quickstart(self, capsys):
        load_example("serving_quickstart").main()
        out = capsys.readouterr().out
        assert "incremental == re-mine: True" in out
        assert "server drained" in out

    @pytest.mark.slow
    def test_incremental_maintenance(self, capsys, monkeypatch):
        module = load_example("incremental_maintenance")
        # Downscale: the example defaults to the full 8000-tuple
        # Figure 16 workload; 1200 tuples keep the shape and the speed.
        from repro.synth import workloads

        monkeypatch.setattr(
            module, "paper_scale",
            lambda: workloads.paper_scale(n_tuples=1200))
        module.main()
        out = capsys.readouterr().out
        assert "identical=True" in out
        assert "reproduced" in out

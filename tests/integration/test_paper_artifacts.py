"""Regeneration of the paper's qualitative artifacts (Figures 4, 7, 14).

These are the file-level outputs a user of the paper's application saw:
the dataset file, the discovered-rules file, and the update batch file.
The tests drive the same flow end to end through the public API.
"""

import io

from repro.app.session import Session
from repro.core.events import AddAnnotations
from repro.core.manager import AnnotationRuleManager
from repro.io import dataset_format, rules_format, updates_format
from repro.synth import workloads
from repro.synth.generator import generate_annotation_batch
from tests.conftest import assert_equivalent_to_remine


class TestFigure4Dataset:
    def test_generated_dataset_matches_figure4_format(self, tmp_path):
        workload = workloads.dev_scale(n_tuples=50)
        path = tmp_path / "dataset.txt"
        dataset_format.write_dataset(workload.relation, path)
        lines = path.read_text().splitlines()
        assert len(lines) == 50
        for line in lines:
            tokens = line.split()
            data = [token for token in tokens
                    if not token.startswith("Annot_")]
            assert len(data) == 4  # dev workload arity


class TestFigure7Rules:
    def test_rule_file_regenerated(self, tmp_path):
        workload = workloads.dev_scale()
        manager = AnnotationRuleManager(
            workload.relation, min_support=workload.min_support,
            min_confidence=workload.min_confidence)
        manager.mine()
        path = tmp_path / "rules.txt"
        written = rules_format.write_rules(manager.rules,
                                           manager.vocabulary, path)
        assert written > 0
        for parsed in rules_format.parse_rules(path):
            # Figure 7 semantics: confidence then support, both in [0,1],
            # and every rule satisfies the entered thresholds.
            assert parsed.confidence >= workload.min_confidence - 1e-4
            assert parsed.support >= workload.min_support - 1e-4


class TestFigure14Updates:
    def test_update_file_round_trip_through_manager(self, tmp_path):
        workload = workloads.dev_scale()
        manager = AnnotationRuleManager(
            workload.relation, min_support=workload.min_support,
            min_confidence=workload.min_confidence)
        manager.mine()
        batch = generate_annotation_batch(workload.relation, size=20,
                                          seed=5)
        path = tmp_path / "updates.txt"
        updates_format.write_updates(AddAnnotations.build(batch), path)
        event = updates_format.read_updates(path)
        manager.apply(event)
        assert_equivalent_to_remine(manager)


class TestApplicationFlow:
    def test_session_replays_paper_workflow(self, tmp_path):
        """Dataset file -> menu mining -> update file -> rules file."""
        workload = workloads.dev_scale(n_tuples=120)
        dataset = tmp_path / "data.txt"
        dataset_format.write_dataset(workload.relation, dataset)

        session = Session()
        session.load_dataset(dataset)
        session.mine(0.3, 0.7)
        rules_before = len(session.manager.rules)

        batch = generate_annotation_batch(session.manager.relation,
                                          size=15, seed=2)
        updates = tmp_path / "updates.txt"
        updates_format.write_updates(AddAnnotations.build(batch), updates)
        session.add_annotations_from_file(updates)

        out = tmp_path / "rules.txt"
        written = session.write_rules(out)
        assert written == len(session.manager.rules)
        assert session.manager.verify_against_remine().equivalent
        assert rules_before >= 0  # flow completed

"""End-to-end: a generated experiment kit driven through the menu CLI.

This is the complete user journey of the paper's application — dataset
file in, mining, update files, rule file out — but over files produced
by ``repro-gendata``, proving the generator, the formats, the CLI and
the incremental engine compose.
"""

from repro.app.cli import CommandLoop
from repro.io.rules_format import parse_rules
from repro.synth.trace import KitConfig, write_kit


def run_cli(dataset, answers):
    answers = iter(answers)
    output = []
    loop = CommandLoop(lambda prompt: next(answers, "0"), output.append)
    code = loop.run(str(dataset))
    return code, "\n".join(str(line) for line in output)


class TestKitThroughCli:
    def test_full_journey(self, tmp_path):
        kit = write_kit(tmp_path / "kit",
                        KitConfig(n_tuples=120, update_batches=2,
                                  update_batch_size=10, insert_rows=8))
        rules_out = tmp_path / "rules.txt"
        answers = [
            "1", "0.3", "0.7",                      # mine D2A
            "3", str(kit.generalizations),          # load Figure 9 file
            "1", "0.3", "0.7",                      # re-mine extended DB
            "4", str(kit.updates[0]),               # δ batch 1
            "4", str(kit.updates[1]),               # δ batch 2
            "5", str(kit.annotated_tuples),         # Case 1
            "6", str(kit.unannotated_tuples),       # Case 2
            "7", "5",                               # recommendations
            "8", str(rules_out),                    # Figure 7 output
            "9",                                    # status
            "0",
        ]
        code, text = run_cli(kit.dataset, answers)
        assert code == 0
        assert "Error" not in text
        assert "add-annotations" in text
        assert "add-annotated-tuples" in text
        assert "add-unannotated-tuples" in text
        assert rules_out.exists()
        parsed = list(parse_rules(rules_out))
        assert parsed, "rule file should not be empty"
        for entry in parsed:
            assert entry.confidence >= 0.7 - 1e-4
            assert entry.support >= 0.3 * 0.75 - 1e-4  # >= margin band

    def test_kit_cli_state_matches_library_replay(self, tmp_path):
        """Driving the kit through the CLI must land on the same rules
        as replaying it through the library API."""
        from repro.synth.trace import replay_kit

        kit = write_kit(tmp_path / "kit",
                        KitConfig(n_tuples=100, update_batches=2,
                                  update_batch_size=8, insert_rows=5,
                                  include_generalizations=False))
        answers = [
            "1", "0.3", "0.7",
            "4", str(kit.updates[0]),
            "4", str(kit.updates[1]),
            "5", str(kit.annotated_tuples),
            "6", str(kit.unannotated_tuples),
            "0",
        ]
        output = []
        answers_iterator = iter(answers)
        loop = CommandLoop(lambda prompt: next(answers_iterator, "0"),
                           output.append)
        loop.run(str(kit.dataset))
        cli_manager = loop.session.manager

        library_manager = replay_kit(kit, min_support=0.3,
                                     min_confidence=0.7)
        assert cli_manager.signature() == library_manager.signature()

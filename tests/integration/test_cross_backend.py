"""Cross-backend agreement: Apriori == Eclat == FP-growth on workloads."""

import pytest

from repro._util import min_count_for
from repro.mining.apriori import mine_frequent_itemsets
from repro.mining.constraints import (
    CombinedRelevanceConstraint,
    constraint_for_task,
    MiningTask,
)
from repro.mining.eclat import mine_frequent_itemsets_vertical
from repro.mining.fpgrowth import mine_frequent_itemsets_fp
from repro.relation.transactions import encode_relation
from repro.synth import workloads


@pytest.fixture(scope="module")
def encoded():
    workload = workloads.dev_scale()
    database = encode_relation(workload.relation)
    return database


@pytest.mark.parametrize("task", [
    MiningTask.UNRESTRICTED,
    MiningTask.DATA_TO_ANNOTATION,
    MiningTask.ANNOTATION_TO_ANNOTATION,
    MiningTask.COMBINED,
])
def test_three_backends_agree(encoded, task):
    constraint = constraint_for_task(task, encoded.vocabulary)
    min_count = min_count_for(0.2, len(encoded))
    apriori_table = mine_frequent_itemsets(
        encoded.transactions, min_count=min_count, constraint=constraint)
    eclat_table = mine_frequent_itemsets_vertical(
        encoded.transactions, min_count=min_count, constraint=constraint)
    fp_table = mine_frequent_itemsets_fp(
        encoded.transactions, min_count=min_count, constraint=constraint)
    assert apriori_table == eclat_table
    assert apriori_table == fp_table


def test_hash_tree_and_scan_counters_agree(encoded):
    constraint = CombinedRelevanceConstraint(encoded.vocabulary)
    min_count = min_count_for(0.25, len(encoded))
    tree = mine_frequent_itemsets(encoded.transactions, min_count=min_count,
                                  constraint=constraint, counter="hashtree")
    scan = mine_frequent_itemsets(encoded.transactions, min_count=min_count,
                                  constraint=constraint, counter="scan")
    vertical = mine_frequent_itemsets(encoded.transactions,
                                      min_count=min_count,
                                      constraint=constraint,
                                      counter="vertical")
    assert tree == scan
    assert tree == vertical

"""Round-trip laws for the paper's file formats."""

import io

from hypothesis import given, settings, strategies as st

from repro.core.events import AddAnnotations
from repro.io import dataset_format, updates_format
from repro.relation.relation import AnnotatedRelation

value_strategy = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=6)

annotation_strategy = value_strategy.map(lambda token: f"Annot_{token}")

row_strategy = st.tuples(
    st.lists(value_strategy, min_size=1, max_size=5),
    st.frozensets(annotation_strategy, max_size=3),
)


@given(rows=st.lists(row_strategy, min_size=0, max_size=15))
@settings(max_examples=60, deadline=None)
def test_dataset_round_trip(rows):
    relation = AnnotatedRelation()
    for values, annotations in rows:
        relation.insert(values, annotations)
    buffer = io.StringIO()
    written = dataset_format.write_dataset(relation, buffer)
    assert written == len(rows)
    reread = dataset_format.read_dataset(
        io.StringIO(buffer.getvalue()))
    assert len(reread) == len(relation)
    for tid in range(len(rows)):
        assert reread.tuple(tid).values == relation.tuple(tid).values
        assert reread.tuple(tid).annotation_ids \
            == relation.tuple(tid).annotation_ids


@given(pairs=st.lists(
    st.tuples(st.integers(min_value=0, max_value=10_000),
              annotation_strategy),
    min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_updates_round_trip(pairs):
    event = AddAnnotations.build(pairs)
    buffer = io.StringIO()
    updates_format.write_updates(event, buffer)
    assert updates_format.read_updates(
        buffer.getvalue().splitlines()) == event


@given(rows=st.lists(row_strategy, min_size=0, max_size=10))
@settings(max_examples=30, deadline=None)
def test_dataset_write_is_deterministic(rows):
    relation = AnnotatedRelation()
    for values, annotations in rows:
        relation.insert(values, annotations)
    first, second = io.StringIO(), io.StringIO()
    dataset_format.write_dataset(relation, first)
    dataset_format.write_dataset(relation, second)
    assert first.getvalue() == second.getvalue()

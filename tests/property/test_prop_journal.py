"""Replay-equivalence property suite for the write-ahead journal.

The durability contract mirrors the shard contract: for any backend,
counting substrate, shard layout and valid event stream, recovering
``snapshot + journal suffix`` must produce byte-identical
``signature()`` to the live engine — at *every* flush boundary, and
at every randomized crash point (a torn tail lands the recovery on
the last fully durable boundary, never between two).
"""

import shutil

import pytest

from repro.core.engine import engine
from repro.core.journal import JournalStore
from repro.mining.backend import available_backends
from repro.synth.streams import EventStream, StreamConfig, apply_to_relation
from tests.conftest import make_relation
from tests.property.test_prop_shard import COUNTERS, drawn_events

SHARD_COUNTS = (1, 4)
SEEDS = (5, 31)


def journaled_engine(tmp_path, backend, counter, shards, *,
                     snapshot_every=None):
    relation = make_relation()
    live = engine(relation, min_support=0.25, min_confidence=0.6,
                  backend=backend, counter=counter, shards=shards,
                  validate=True)
    live.mine()
    store = JournalStore(tmp_path / "store",
                         snapshot_every=snapshot_every)
    store.ensure_base_snapshot(live)
    return live, store


def flush(store, live, batch):
    """The service's write order: journal first, then apply."""
    seq = store.append_batch(batch)
    live.apply_batch(list(batch))
    store.maybe_snapshot(live, seq)
    return seq


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("counter", COUNTERS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_recovery_matches_live_at_every_boundary(tmp_path, backend,
                                                 counter, shards,
                                                 seed, seeds):
    """Snapshot + replay == live signature after each flush, with the
    periodic snapshot cadence exercising both full and suffix replay."""
    live, store = journaled_engine(tmp_path, backend, counter, shards,
                                   snapshot_every=2)
    events = drawn_events(live.relation, count=12,
                          seed=seeds.seed(seed))
    rng = seeds.rng(seed * 211 + shards)
    cuts = sorted(rng.sample(range(1, len(events)),
                             rng.randint(1, 4)))
    for start, stop in zip([0, *cuts], [*cuts, len(events)]):
        flush(store, live, events[start:stop])
        result = store.recover()
        assert result.engine.signature() == live.signature(), (
            f"recovery diverged at boundary {start}:{stop} "
            f"(backend={backend}, counter={counter}, shards={shards}, "
            f"seed={seed})")
        assert result.engine.db_size == live.db_size
        result.engine.close()
    assert live.verify_against_remine().equivalent
    store.close()
    live.close()


@pytest.mark.parametrize("backend", available_backends()[:1])
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("seed", (7, 19, 43))
def test_random_crash_point_recovers_a_durable_boundary(
        tmp_path, backend, shards, seed, seeds):
    """Truncating the WAL at a random byte inside any record must
    recover exactly the boundary before that record — the crash can
    only ever cost the un-fsynced suffix, never land between states."""
    live, store = journaled_engine(tmp_path, backend, "auto", shards)
    events = drawn_events(live.relation, count=10,
                          seed=seeds.seed(seed))
    boundaries = {0: live.signature()}
    for position in range(0, len(events), 2):
        seq = flush(store, live, events[position:position + 2])
        boundaries[seq] = live.signature()
    offsets = {record.seq: record.offset
               for record in store.records()}
    store.close()
    live.close()

    rng = seeds.rng(seed * 977 + shards)
    wal = tmp_path / "store" / "events.wal"
    whole = wal.read_bytes()
    for trial in range(3):
        torn_seq = rng.choice(sorted(offsets))
        # Cut strictly inside the record: at least one byte of it
        # remains, at least one byte is missing.
        record_end = min((offset for offset in offsets.values()
                          if offset > offsets[torn_seq]),
                         default=len(whole))
        cut = rng.randrange(offsets[torn_seq] + 1, record_end)
        crashed = tmp_path / f"crash-{trial}"
        shutil.copytree(tmp_path / "store", crashed)
        (crashed / "events.wal").write_bytes(whole[:cut])
        crash_store = JournalStore(crashed)
        result = crash_store.recover()
        assert result.last_seq == torn_seq - 1
        assert result.engine.signature() == boundaries[torn_seq - 1], (
            f"crash at byte {cut} (tearing seq {torn_seq}) did not "
            f"recover the previous boundary (backend={backend}, "
            f"shards={shards}, seed={seed})")
        result.engine.close()
        crash_store.close()


@pytest.mark.parametrize("backend", available_backends()[:1])
def test_shard_skewed_stream_recovers_exactly(tmp_path, backend, seeds):
    """A hot-shard insert stream (one shard takes ~every insert) is
    journaled and recovered with the exact same rules and layout."""
    from repro.shard import ShardedEngine

    relation = make_relation()
    base = relation.tid_range
    live = ShardedEngine(
        relation, min_support=0.25, min_confidence=0.6,
        backend=backend, shards=2, validate=True,
        partitioner=lambda tid: tid % 2 if tid < base else 0)
    live.mine()
    store = JournalStore(tmp_path / "store")
    store.ensure_base_snapshot(live)

    stream_config = StreamConfig(
        seed=seeds.seed(61), batch_size=3,
        weight_insert_annotated=6.0,
        weight_insert_unannotated=2.0,
        weight_add_annotations=1.0,
        weight_remove_annotations=0.5,
        weight_remove_tuples=0.25,
    )
    shadow = relation.copy()
    stream = EventStream(shadow, stream_config)
    events = list(stream.take(
        12, apply=lambda event: apply_to_relation(shadow, event)))
    for position in range(0, len(events), 3):
        flush(store, live, events[position:position + 3])
    assert live.relation.tid_range > base, "stream drew no inserts"

    result = store.recover()
    assert result.engine.signature() == live.signature()
    # The snapshot-time assignment survives; tids inserted during the
    # replay fall back to the documented modulo scheme (layout is not
    # answer-bearing, which is what the signature check proves).
    assert result.engine.shard_count == 2
    assert result.engine.assignment()[:base] == live.assignment()[:base]
    assert result.engine.verify_against_remine().equivalent
    result.engine.close()
    store.close()
    live.close()

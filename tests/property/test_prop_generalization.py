"""Property tests: incremental maintenance over the *extended* database.

Generalization labels are derived items that arrive and leave together
with the raw annotations that imply them — the trickiest interaction in
the incremental engine.  These properties drive random relations,
random keyword/id generalization rules and random event sequences, and
require exact equivalence with re-mining the final extended database.
"""

from hypothesis import given, settings, strategies as st

from repro.core.manager import AnnotationRuleManager
from repro.generalization.engine import Generalizer
from repro.generalization.hierarchy import ConceptHierarchy
from repro.generalization.rules import (
    GeneralizationRule,
    GeneralizationRuleSet,
    IdMatcher,
)
from repro.relation.relation import AnnotatedRelation
from tests.conftest import assert_equivalent_to_remine

ANNOTATIONS = ["Annot_1", "Annot_2", "Annot_3", "Annot_4"]
VALUES = ["v0", "v1", "v2"]

row_strategy = st.tuples(
    st.tuples(st.sampled_from(VALUES), st.sampled_from(VALUES)),
    st.frozensets(st.sampled_from(ANNOTATIONS), max_size=2),
)

#: Partition-ish mapping: each label covers a random subset of ids.
mapping_strategy = st.dictionaries(
    keys=st.sampled_from(["LabelA", "LabelB"]),
    values=st.frozensets(st.sampled_from(ANNOTATIONS), min_size=1,
                         max_size=3),
    min_size=1, max_size=2)


def build_manager(rows, mapping, with_hierarchy):
    relation = AnnotatedRelation()
    for values, annotations in rows:
        relation.insert(values, annotations)
    rules = GeneralizationRuleSet(
        [GeneralizationRule(label, IdMatcher(ids))
         for label, ids in sorted(mapping.items())])
    hierarchy = None
    if with_hierarchy:
        hierarchy = ConceptHierarchy.from_edges(
            [(label, "Root") for label in mapping])
    generalizer = Generalizer(relation.registry, rules, hierarchy)
    manager = AnnotationRuleManager(relation, min_support=0.2,
                                    min_confidence=0.6,
                                    generalizer=generalizer,
                                    validate=True)
    manager.mine()
    return manager


@given(rows=st.lists(row_strategy, min_size=2, max_size=12),
       mapping=mapping_strategy,
       with_hierarchy=st.booleans())
@settings(max_examples=40, deadline=None)
def test_generalized_mine_equals_remine(rows, mapping, with_hierarchy):
    manager = build_manager(rows, mapping, with_hierarchy)
    assert_equivalent_to_remine(manager)


@given(rows=st.lists(row_strategy, min_size=3, max_size=10),
       mapping=mapping_strategy,
       pairs=st.lists(
           st.tuples(st.integers(min_value=0, max_value=9),
                     st.sampled_from(ANNOTATIONS)),
           min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_generalized_case3_equals_remine(rows, mapping, pairs):
    manager = build_manager(rows, mapping, with_hierarchy=False)
    live = [(tid, annotation) for tid, annotation in pairs
            if manager.relation.is_live(tid)]
    if live:
        manager.add_annotations(live)
    assert_equivalent_to_remine(manager)


@given(rows=st.lists(row_strategy, min_size=3, max_size=10),
       mapping=mapping_strategy,
       pairs=st.lists(
           st.tuples(st.integers(min_value=0, max_value=9),
                     st.sampled_from(ANNOTATIONS)),
           min_size=1, max_size=4))
@settings(max_examples=30, deadline=None)
def test_generalized_removal_equals_remine(rows, mapping, pairs):
    manager = build_manager(rows, mapping, with_hierarchy=True)
    live = [(tid, annotation) for tid, annotation in pairs
            if manager.relation.is_live(tid)
            and manager.relation.tuple(tid).has_annotation(annotation)]
    if live:
        manager.remove_annotations(live)
    assert_equivalent_to_remine(manager)


@given(rows=st.lists(row_strategy, min_size=2, max_size=10),
       mapping=mapping_strategy)
@settings(max_examples=30, deadline=None)
def test_labels_are_exactly_the_generalizer_output(rows, mapping):
    """After any mine, every tuple's labels == labels_for(annotations)."""
    manager = build_manager(rows, mapping, with_hierarchy=False)
    for row in manager.relation:
        expected = manager.generalizer.labels_for(row.annotation_ids)
        assert frozenset(row.labels) == expected

"""Snapshot round-trip laws for manager persistence."""

from hypothesis import given, settings, strategies as st

from repro.core.manager import AnnotationRuleManager
from repro.core.persistence import restore, snapshot
from repro.relation.relation import AnnotatedRelation

VALUES = ["v0", "v1", "v2"]
ANNOTATIONS = ["Annot_1", "Annot_2"]

row_strategy = st.tuples(
    st.tuples(st.sampled_from(VALUES), st.sampled_from(VALUES)),
    st.frozensets(st.sampled_from(ANNOTATIONS), max_size=2),
)


def build_manager(rows):
    relation = AnnotatedRelation()
    for values, annotations in rows:
        relation.insert(values, annotations)
    manager = AnnotationRuleManager(relation, min_support=0.2,
                                    min_confidence=0.6)
    manager.mine()
    return manager


@given(rows=st.lists(row_strategy, min_size=2, max_size=12))
@settings(max_examples=40, deadline=None)
def test_snapshot_restore_preserves_signature(rows):
    manager = build_manager(rows)
    restored = restore(snapshot(manager))
    assert restored.signature() == manager.signature()
    assert restored.db_size == manager.db_size
    assert len(restored.table) == len(manager.table)


@given(rows=st.lists(row_strategy, min_size=2, max_size=10),
       pairs=st.lists(
           st.tuples(st.integers(min_value=0, max_value=9),
                     st.sampled_from(ANNOTATIONS)),
           min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_restored_manager_continues_incrementally(rows, pairs):
    """save -> load -> more updates must equal never having saved."""
    original = build_manager(rows)
    restored = restore(snapshot(original))
    live_pairs = [(tid, annotation) for tid, annotation in pairs
                  if original.relation.is_live(tid)]
    if live_pairs:
        original.add_annotations(live_pairs)
        restored.add_annotations(live_pairs)
    assert restored.signature() == original.signature()


@given(rows=st.lists(row_strategy, min_size=2, max_size=10))
@settings(max_examples=30, deadline=None)
def test_snapshot_is_stable(rows):
    """Snapshotting twice without changes yields equal documents."""
    manager = build_manager(rows)
    assert snapshot(manager) == snapshot(manager)

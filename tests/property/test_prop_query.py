"""Propagation laws for the annotation-propagating query algebra."""

from hypothesis import given, settings, strategies as st

from repro.relation.query import project, select, union
from repro.relation.relation import AnnotatedRelation
from repro.relation.schema import Schema

ARITY = 3

row_strategy = st.tuples(
    st.tuples(*[st.sampled_from(["a", "b", "c"]) for _ in range(ARITY)]),
    st.frozensets(st.sampled_from(["Annot_1", "Annot_2", "Annot_3"]),
                  max_size=2),
)

relation_strategy = st.lists(row_strategy, min_size=0, max_size=12)


def build(rows) -> AnnotatedRelation:
    relation = AnnotatedRelation(Schema(["x", "y", "z"]))
    for values, annotations in rows:
        relation.insert(values, annotations)
    return relation


@given(rows=relation_strategy)
@settings(max_examples=50, deadline=None)
def test_select_true_is_identity_with_annotations(rows):
    relation = build(rows)
    result = select(relation, lambda values: True)
    assert len(result) == len(relation)
    for out_tid, (in_tid,) in enumerate(result.provenance):
        assert result.relation.tuple(out_tid).values \
            == relation.tuple(in_tid).values
        assert result.relation.tuple(out_tid).annotation_ids \
            == relation.tuple(in_tid).annotation_ids


@given(rows=relation_strategy)
@settings(max_examples=50, deadline=None)
def test_select_never_invents_annotations(rows):
    relation = build(rows)
    result = select(relation, lambda values: values[0] == "a")
    universe = {annotation_id for row in relation
                for annotation_id in row.annotation_ids}
    for row in result.relation:
        assert row.annotation_ids <= universe


@given(rows=relation_strategy,
       columns=st.lists(st.integers(min_value=0, max_value=ARITY - 1),
                        min_size=1, max_size=ARITY, unique=True))
@settings(max_examples=50, deadline=None)
def test_project_preserves_row_annotations(rows, columns):
    relation = build(rows)
    result = project(relation, columns)
    for out_tid, (in_tid,) in enumerate(result.provenance):
        # All annotations here are row-anchored: every one must survive.
        assert result.relation.tuple(out_tid).annotation_ids \
            == relation.tuple(in_tid).annotation_ids


@given(rows=relation_strategy)
@settings(max_examples=50, deadline=None)
def test_distinct_project_unions_annotations(rows):
    relation = build(rows)
    result = project(relation, [0], distinct=True)
    # Each output value's annotations == union over its sources.
    for out_row in result.relation:
        sources = result.provenance[out_row.tid]
        expected = set()
        for in_tid in sources:
            expected |= relation.tuple(in_tid).annotation_ids
        assert out_row.annotation_ids == expected
    # Output values are unique.
    values = [row.values for row in result.relation]
    assert len(values) == len(set(values))


@given(left_rows=relation_strategy, right_rows=relation_strategy)
@settings(max_examples=40, deadline=None)
def test_union_cardinality_and_annotation_union(left_rows, right_rows):
    left, right = build(left_rows), build(right_rows)
    bag = union(left, right, distinct=False)
    assert len(bag) == len(left) + len(right)
    distinct = union(left, right, distinct=True)
    assert len(distinct) <= len(bag)
    total_values = {row.values for row in left} | {row.values
                                                   for row in right}
    assert len(distinct) == len(total_values)

"""Property tests on rule statistics and rule-set operations."""

from hypothesis import assume, given, settings, strategies as st

from repro.core.rules import AssociationRule, RuleKind, RuleSet
from repro.core.stats import Thresholds


@st.composite
def rule_strategy(draw):
    db_size = draw(st.integers(min_value=1, max_value=1000))
    lhs_count = draw(st.integers(min_value=1, max_value=db_size))
    union_count = draw(st.integers(min_value=0, max_value=lhs_count))
    lhs = tuple(sorted(draw(
        st.frozensets(st.integers(min_value=0, max_value=20),
                      min_size=1, max_size=4))))
    rhs = draw(st.integers(min_value=21, max_value=30))
    kind = draw(st.sampled_from(list(RuleKind)))
    return AssociationRule(kind=kind, lhs=lhs, rhs=rhs,
                           union_count=union_count, lhs_count=lhs_count,
                           db_size=db_size)


@given(rule=rule_strategy())
@settings(max_examples=100, deadline=None)
def test_support_bounded_by_confidence(rule):
    assert 0.0 <= rule.support <= rule.confidence <= 1.0


@given(rule=rule_strategy())
@settings(max_examples=100, deadline=None)
def test_support_times_db_is_union_count(rule):
    import pytest

    assert rule.support * rule.db_size \
        == pytest.approx(rule.union_count, abs=1e-9)


@given(rule=rule_strategy(),
       thresholds=st.tuples(st.floats(0.05, 1.0), st.floats(0.05, 1.0),
                            st.floats(0.05, 1.0)))
@settings(max_examples=100, deadline=None)
def test_valid_and_near_miss_are_disjoint(rule, thresholds):
    min_support, min_confidence, margin = thresholds
    t = Thresholds(min_support, min_confidence, margin)
    assert not (t.is_valid(rule) and t.is_near_miss(rule))


@given(rules=st.lists(rule_strategy(), max_size=20))
@settings(max_examples=50, deadline=None)
def test_ruleset_mentioning_index_consistent(rules):
    rule_set = RuleSet(rules)
    catalog = rule_set.catalog()
    for rule in rule_set:
        for item in rule.union_itemset:
            assert rule.key in {r.key for r in catalog.mentioning(item)}


@given(rules=st.lists(rule_strategy(), max_size=15))
@settings(max_examples=50, deadline=None)
def test_ruleset_discard_restores_emptiness(rules):
    rule_set = RuleSet(rules)
    for key in list(rule_set.keys()):
        rule_set.discard(key)
    assert len(rule_set) == 0
    # The inverted index must be fully cleaned up.
    catalog = rule_set.catalog()
    for rule in rules:
        for item in rule.union_itemset:
            assert catalog.mentioning(item) == ()


@given(rules=st.lists(rule_strategy(), max_size=15))
@settings(max_examples=50, deadline=None)
def test_sorted_rules_is_stable_total_order(rules):
    rule_set = RuleSet(rules)
    first = [rule.key for rule in rule_set.sorted_rules()]
    second = [rule.key for rule in rule_set.sorted_rules()]
    assert first == second
    assert len(first) == len(rule_set)


@given(rule=rule_strategy(), db_delta=st.integers(min_value=0, max_value=50))
@settings(max_examples=50, deadline=None)
def test_growing_db_never_raises_support(rule, db_delta):
    assume(rule.db_size + db_delta >= rule.lhs_count)
    grown = rule.with_counts(db_size=rule.db_size + db_delta)
    assert grown.support <= rule.support
    assert grown.confidence == rule.confidence

"""Property-based tests over the mining substrate.

Invariants checked on random transaction databases:

* the three miners (Apriori, Eclat, FP-growth) produce identical tables;
* tables are downward closed with monotone counts (anti-monotonicity);
* every reported count is the true containment count;
* the hash-tree counter equals brute force.
"""

from hypothesis import given, settings, strategies as st

from repro.mining.apriori import mine_frequent_itemsets
from repro.mining.eclat import mine_frequent_itemsets_vertical
from repro.mining.fpgrowth import mine_frequent_itemsets_fp
from repro.mining.hash_tree import HashTree
from repro.mining.tables import check_downward_closure

transactions_strategy = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=9), max_size=6),
    min_size=0, max_size=25)

min_count_strategy = st.integers(min_value=1, max_value=5)


@given(transactions=transactions_strategy, min_count=min_count_strategy)
@settings(max_examples=60, deadline=None)
def test_backends_agree(transactions, min_count):
    apriori_table = mine_frequent_itemsets(transactions,
                                           min_count=min_count)
    eclat_table = mine_frequent_itemsets_vertical(transactions,
                                                  min_count=min_count)
    fp_table = mine_frequent_itemsets_fp(transactions, min_count=min_count)
    assert apriori_table == eclat_table == fp_table


@given(transactions=transactions_strategy, min_count=min_count_strategy)
@settings(max_examples=60, deadline=None)
def test_table_is_downward_closed(transactions, min_count):
    table = mine_frequent_itemsets(transactions, min_count=min_count)
    assert check_downward_closure(table) == []


@given(transactions=transactions_strategy, min_count=min_count_strategy)
@settings(max_examples=60, deadline=None)
def test_counts_are_true_containment_counts(transactions, min_count):
    table = mine_frequent_itemsets(transactions, min_count=min_count)
    for itemset, count in table.items():
        true_count = sum(1 for transaction in transactions
                         if set(itemset) <= transaction)
        assert count == true_count
        assert count >= min_count


@given(transactions=transactions_strategy, min_count=min_count_strategy)
@settings(max_examples=40, deadline=None)
def test_nothing_frequent_is_missing(transactions, min_count):
    """Complement of the soundness check: exhaustive completeness for
    itemsets up to size 3 (larger sizes follow by closure)."""
    import itertools

    table = mine_frequent_itemsets(transactions, min_count=min_count)
    universe = sorted({item for transaction in transactions
                       for item in transaction})
    for length in (1, 2, 3):
        for combo in itertools.combinations(universe, length):
            true_count = sum(1 for transaction in transactions
                             if set(combo) <= transaction)
            if true_count >= min_count:
                assert combo in table


@given(
    transactions=transactions_strategy,
    candidates=st.lists(
        st.frozensets(st.integers(min_value=0, max_value=9),
                      min_size=2, max_size=2),
        min_size=1, max_size=20, unique=True),
    fanout=st.integers(min_value=2, max_value=8),
    leaf=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_hash_tree_counts_equal_brute_force(transactions, candidates,
                                            fanout, leaf):
    itemsets = [tuple(sorted(candidate)) for candidate in candidates]
    tree = HashTree(itemsets, fanout=fanout, max_leaf_size=leaf)
    counts = tree.count_all(transactions)
    for itemset in itemsets:
        expected = sum(1 for transaction in transactions
                       if set(itemset) <= transaction)
        assert counts[itemset] == expected

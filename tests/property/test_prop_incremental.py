"""The paper's central claim as a property-based test.

For a random annotated relation and a random sequence of update events
(all three of the paper's cases plus the removal extensions), the
incrementally maintained rule set must be *identical* — structure and
exact counts — to a full re-mine of the final database.  This is
precisely the verification the paper performs manually in each of its
three "Results" subsections, generalized over thousands of random
scenarios.
"""

from hypothesis import given, settings, strategies as st

from repro.core.manager import AnnotationRuleManager
from repro.relation.relation import AnnotatedRelation
from tests.conftest import assert_equivalent_to_remine

VALUES = ["v0", "v1", "v2", "v3"]
ANNOTATIONS = ["Annot_1", "Annot_2", "Annot_3"]

row_strategy = st.tuples(
    st.tuples(st.sampled_from(VALUES), st.sampled_from(VALUES)),
    st.frozensets(st.sampled_from(ANNOTATIONS), max_size=2),
)

relation_strategy = st.lists(row_strategy, min_size=2, max_size=14)

thresholds_strategy = st.tuples(
    st.sampled_from([0.15, 0.25, 0.4]),
    st.sampled_from([0.5, 0.7, 0.9]),
    st.sampled_from([0.5, 0.75, 1.0]),
)


def event_strategy(max_tid):
    add_annotations = st.lists(
        st.tuples(st.integers(min_value=0, max_value=max_tid - 1),
                  st.sampled_from(ANNOTATIONS)),
        min_size=1, max_size=4,
    ).map(lambda pairs: ("add_annotations", pairs))
    insert_annotated = st.lists(row_strategy, min_size=1, max_size=3).map(
        lambda rows: ("insert_annotated", rows))
    insert_unannotated = st.lists(
        st.tuples(st.sampled_from(VALUES), st.sampled_from(VALUES)),
        min_size=1, max_size=3,
    ).map(lambda rows: ("insert_unannotated", rows))
    remove_annotations = st.lists(
        st.tuples(st.integers(min_value=0, max_value=max_tid - 1),
                  st.sampled_from(ANNOTATIONS)),
        min_size=1, max_size=3,
    ).map(lambda pairs: ("remove_annotations", pairs))
    remove_tuples = st.lists(
        st.integers(min_value=0, max_value=max_tid - 1),
        min_size=1, max_size=2, unique=True,
    ).map(lambda tids: ("remove_tuples", tids))
    return st.one_of(add_annotations, insert_annotated,
                     insert_unannotated, remove_annotations, remove_tuples)


def build_manager(rows, thresholds):
    relation = AnnotatedRelation()
    for values, annotations in rows:
        relation.insert(values, annotations)
    min_support, min_confidence, margin = thresholds
    manager = AnnotationRuleManager(relation, min_support=min_support,
                                    min_confidence=min_confidence,
                                    margin=margin, validate=True)
    manager.mine()
    return manager


def apply_event(manager, event):
    kind, payload = event
    if kind == "add_annotations":
        live = [(tid, annotation) for tid, annotation in payload
                if manager.relation.is_live(tid)]
        if live:
            manager.add_annotations(live)
    elif kind == "insert_annotated":
        manager.insert_annotated(payload)
    elif kind == "insert_unannotated":
        manager.insert_unannotated(payload)
    elif kind == "remove_annotations":
        live = [(tid, annotation) for tid, annotation in payload
                if manager.relation.is_live(tid)]
        if live:
            manager.remove_annotations(live)
    elif kind == "remove_tuples":
        live = [tid for tid in payload
                if manager.relation.is_live(tid)]
        if live and manager.relation.live_count > len(live):
            manager.remove_tuples(live)


@given(rows=relation_strategy, thresholds=thresholds_strategy,
       data=st.data())
@settings(max_examples=60, deadline=None)
def test_incremental_equals_remine_after_event_sequence(rows, thresholds,
                                                        data):
    manager = build_manager(rows, thresholds)
    events = data.draw(st.lists(
        event_strategy(max_tid=max(2, manager.relation.tid_range)),
        min_size=1, max_size=4))
    for event in events:
        apply_event(manager, event)
    assert_equivalent_to_remine(manager)


@given(rows=relation_strategy, thresholds=thresholds_strategy)
@settings(max_examples=40, deadline=None)
def test_initial_mine_equals_remine(rows, thresholds):
    manager = build_manager(rows, thresholds)
    assert_equivalent_to_remine(manager)


@given(rows=relation_strategy,
       pairs=st.lists(
           st.tuples(st.integers(min_value=0, max_value=13),
                     st.sampled_from(ANNOTATIONS)),
           min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_case3_specifically(rows, pairs):
    """The paper's main contribution gets its own dense property."""
    manager = build_manager(rows, (0.2, 0.6, 0.75))
    live = [(tid, annotation) for tid, annotation in pairs
            if manager.relation.is_live(tid)]
    if live:
        manager.add_annotations(live)
    assert_equivalent_to_remine(manager)


@given(rows=relation_strategy)
@settings(max_examples=40, deadline=None)
def test_case2_never_adds_rules(rows):
    manager = build_manager(rows, (0.2, 0.6, 0.75))
    report = manager.insert_unannotated([("v0", "v1"), ("v2", "v3")])
    assert report.rules_added == []
    assert_equivalent_to_remine(manager)

"""Randomized equivalence of per-event, one-batch and split application.

The delta-plan pipeline's contract: for *any* valid event sequence,
applying the events one at a time, applying them as one
``apply_batch``, and applying them split at arbitrary flush boundaries
must all produce identical ``signature()`` — and agree with a
from-scratch re-mine.  This is the paper's equivalence discipline
lifted to the batched write path, across every backend and both
counting substrates.
"""

import pytest

from repro.core.engine import engine
from repro.mining.backend import available_backends
from repro.synth.streams import EventStream, StreamConfig, apply_to_relation
from tests.conftest import assert_equivalent_to_remine, make_relation

COUNTERS = ("auto", "vertical")
SEEDS = (3, 17, 41)


def drawn_events(relation, count, seed):
    """A valid event sequence, drawn against a shadow copy so each
    event sees the effect of the previous ones without touching the
    relation the engines under test will own."""
    shadow = relation.copy()
    stream = EventStream(shadow, StreamConfig(seed=seed, batch_size=4))
    return list(stream.take(
        count, apply=lambda event: apply_to_relation(shadow, event)))


def mined_engine(relation, backend, counter):
    eng = engine(relation.copy(),
                 min_support=0.25, min_confidence=0.6,
                 backend=backend, counter=counter, validate=True)
    eng.mine()
    return eng


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("counter", COUNTERS)
@pytest.mark.parametrize("seed", SEEDS)
def test_batching_boundaries_do_not_change_the_rules(backend, counter, seed,
                                                     seeds):
    relation = make_relation()
    events = drawn_events(relation, count=10, seed=seeds.seed(seed))

    per_event = mined_engine(relation, backend, counter)
    for event in events:
        per_event.apply(event)

    one_batch = mined_engine(relation, backend, counter)
    one_batch.apply_batch(events)

    split = mined_engine(relation, backend, counter)
    rng = seeds.rng(seed * 31 + 7)
    cut_count = rng.randint(1, min(3, len(events) - 1))
    cuts = sorted(rng.sample(range(1, len(events)), cut_count))
    for start, stop in zip([0, *cuts], [*cuts, len(events)]):
        split.apply_batch(events[start:stop])

    reference = per_event.signature()
    assert one_batch.signature() == reference, (
        f"one-batch application diverged (backend={backend}, "
        f"counter={counter}, seed={seed})")
    assert split.signature() == reference, (
        f"split application at {cuts} diverged (backend={backend}, "
        f"counter={counter}, seed={seed})")
    assert per_event.db_size == one_batch.db_size == split.db_size
    assert_equivalent_to_remine(one_batch)


@pytest.mark.parametrize("backend", available_backends())
def test_heavier_annotation_stream_one_batch(backend, seeds):
    """An annotation-dominated stream (the paper's Case 3) applied as
    one deep batch — the serving hot path of the flush pipeline."""
    relation = make_relation()
    shadow = relation.copy()
    stream = EventStream(shadow, StreamConfig(
        seed=seeds.seed(59), batch_size=3,
        weight_add_annotations=8.0,
        weight_insert_annotated=1.0,
        weight_insert_unannotated=0.5,
        weight_remove_annotations=2.0,
        weight_remove_tuples=0.25,
    ))
    events = list(stream.take(
        25, apply=lambda event: apply_to_relation(shadow, event)))

    per_event = mined_engine(relation, backend, "auto")
    for event in events:
        per_event.apply(event)
    one_batch = mined_engine(relation, backend, "auto")
    report = one_batch.apply_batch(events)

    assert one_batch.signature() == per_event.signature()
    assert report.events == len(events)
    assert_equivalent_to_remine(one_batch)

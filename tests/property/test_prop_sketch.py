"""Approximate-tier property suite.

Two contracts back the ``mode=estimate`` read path:

* **Exact mode is untouched.**  An engine whose sketch tier is
  exercised between flushes (warm build + estimate reads on every
  boundary) produces byte-identical ``signature()`` to a twin engine
  that never touches a sketch — across backends, counting substrates
  and randomized streams, including the shard-skewed layout.  Estimates
  are pure reads; the maintenance observer must never perturb mining
  state.
* **Bounds cover empirically.**  Every non-exact estimate carries a
  symmetric bound; re-scoring mined rules (whose ``union_count`` /
  ``lhs_count`` are exact ground truth) through deliberately tiny
  sketches must land inside the bound at no less than the configured
  confidence level.  Hashes are deterministic, so the observed coverage
  is a fixed regression point per seed, not a flaky sample.
"""

import pytest

from repro.core.engine import engine
from repro.mining.backend import available_backends
from repro.mining.sketch import z_score
from repro.shard import ShardedEngine
from tests.conftest import make_relation
from tests.property.test_prop_shard import drawn_events

COUNTERS = ("auto", "vertical")
SEEDS = (5, 31)

#: Small enough to force genuine sampling at the scales below, large
#: enough (>= 8, the module floor) to keep estimates meaningful.
TINY_K = 16

#: The coverage check runs at a slightly larger sample: the bound's
#: normal approximation is only nominal once k clears ~32; below that
#: the 1/sqrt(k) correction term under-covers by a few percent.
COVERAGE_K = 32


def synthetic_relation(rng, rows=360):
    """A relation with heavy token overlap so itemsets co-occur often
    enough for sampled (non-exhaustive) sketches to matter."""
    annotations = ("A", "B", "C")
    data = []
    for _ in range(rows):
        values = (str(rng.randrange(3)), str(rng.randrange(4)))
        labels = tuple(a for a in annotations if rng.random() < 0.45)
        data.append((values, labels))
    return make_relation(data)


def probe_estimates(manager):
    """Exercise the whole estimate surface; return nothing.  Exact-mode
    equivalence asserts this call sequence has no observable effect."""
    manager.warm_sketches()
    assert manager.sketches_ready
    for rule in manager.catalog().rules:
        union = tuple(sorted(rule.lhs + (rule.rhs,)))
        manager.estimate_itemset(union)
        manager.estimate_rule(rule.lhs, rule.rhs)
        manager.sketch_cardinality(rule.rhs)


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("counter", COUNTERS)
@pytest.mark.parametrize("seed", SEEDS)
def test_estimate_reads_never_change_exact_signatures(backend, counter,
                                                      seed, seeds):
    """mode=exact byte-identity: a probed engine (sketches warmed, every
    rule estimated at every flush boundary) and an untouched twin agree
    on ``signature()`` throughout a randomized stream."""
    relation = make_relation()
    events = drawn_events(relation, count=12, seed=seeds.seed(seed))
    untouched = engine(relation.copy(), min_support=0.25,
                       min_confidence=0.6, backend=backend,
                       counter=counter, validate=True)
    probed = engine(relation.copy(), min_support=0.25,
                    min_confidence=0.6, backend=backend,
                    counter=counter, validate=True, sketch_k=TINY_K)
    untouched.mine()
    probed.mine()
    probe_estimates(probed)
    assert probed.signature() == untouched.signature()

    rng = seeds.rng(seed * 977)
    cuts = sorted(rng.sample(range(1, len(events)), 3))
    for start, stop in zip([0, *cuts], [*cuts, len(events)]):
        batch = events[start:stop]
        untouched.apply_batch(batch)
        probed.apply_batch(batch)
        probe_estimates(probed)
        assert probed.signature() == untouched.signature(), (
            f"estimate reads perturbed exact results at boundary "
            f"{start}:{stop} (backend={backend}, counter={counter}, "
            f"seed={seed})")
        assert probed.db_size == untouched.db_size


@pytest.mark.parametrize("counter", COUNTERS)
@pytest.mark.parametrize("confidence_level", (0.9, 0.95))
@pytest.mark.parametrize("seed", SEEDS)
def test_bounds_cover_exact_counts(counter, confidence_level, seed, seeds):
    """Union/LHS counts re-estimated through TINY_K sketches stay
    inside their bound at >= the configured confidence level."""
    rng = seeds.rng(seed * 131 + 7)
    manager = engine(synthetic_relation(rng), min_support=0.05,
                     min_confidence=0.3, counter=counter,
                     sketch_k=COVERAGE_K)
    manager.mine()
    z = z_score(confidence_level)

    checked = sampled = covered = 0
    for rule in manager.catalog().rules:
        union = tuple(sorted(rule.lhs + (rule.rhs,)))
        for items, exact in ((union, rule.union_count),
                             (rule.lhs, rule.lhs_count)):
            estimate = manager.estimate_itemset(items, z=z)
            checked += 1
            if estimate.exact:
                assert estimate.value == exact and estimate.bound == 0.0
                continue
            sampled += 1
            if abs(estimate.value - exact) <= estimate.bound:
                covered += 1
    assert checked > 20, "scenario too small to say anything"
    assert sampled > 10, (
        "no sketch ever sampled — raise the row count or lower TINY_K")
    assert covered / sampled >= confidence_level, (
        f"bound coverage {covered}/{sampled} below "
        f"{confidence_level} (counter={counter}, seed={seed})")


@pytest.mark.parametrize("seed", SEEDS)
def test_rhs_marginals_are_exact_under_churn(seed, seeds):
    """Sketch cardinalities (the lift denominator) track the vertical
    index exactly through a randomized update stream."""
    relation = make_relation()
    events = drawn_events(relation, count=14, seed=seeds.seed(seed + 50))
    manager = engine(relation.copy(), min_support=0.25,
                     min_confidence=0.6, sketch_k=TINY_K)
    manager.mine()
    manager.warm_sketches()
    manager.apply_batch(events)
    for rule in manager.catalog().rules:
        assert manager.sketch_cardinality(rule.rhs) == \
            manager.index.frequency(rule.rhs)


@pytest.mark.parametrize("backend", available_backends())
def test_sharded_estimates_compose_and_stay_exact_mode_clean(backend, seeds):
    """A shard-skewed sharded engine: estimate reads between flushes
    never break byte-identity with the monolith, per-shard estimates
    sum to feasible totals, and exact ground truth stays covered."""
    relation = make_relation()
    base = relation.tid_range

    def skewed(tid: int) -> int:
        return tid % 3 if tid < base else 0

    events = drawn_events(relation, count=12, seed=seeds.seed(83))
    mono = engine(relation.copy(), min_support=0.25, min_confidence=0.6,
                  backend=backend, validate=True)
    sharded = ShardedEngine(relation.copy(), min_support=0.25,
                            min_confidence=0.6, backend=backend,
                            validate=True, shards=3, partitioner=skewed,
                            sketch_k=TINY_K)
    mono.mine()
    sharded.mine()
    for half in (events[:6], events[6:]):
        mono.apply_batch(half)
        sharded.apply_batch(half)
        probe_estimates(sharded)
        assert sharded.signature() == mono.signature()

    for rule in sharded.catalog().rules:
        union = tuple(sorted(rule.lhs + (rule.rhs,)))
        estimate = sharded.estimate_itemset(union)
        assert abs(estimate.value - rule.union_count) <= estimate.bound
        assert sharded.sketch_cardinality(rule.rhs) == \
            mono.index.frequency(rule.rhs)
        combined = sharded.estimate_rule(rule.lhs, rule.rhs)
        assert abs(combined.support - rule.support) <= combined.support_bound
        assert abs(combined.confidence - rule.confidence) <= \
            combined.confidence_bound

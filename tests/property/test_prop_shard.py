"""Differential shard-equivalence suite.

The sharded engine's whole contract is *indistinguishability*: for any
backend, counting substrate, shard count and valid event stream, a
:class:`~repro.shard.ShardedEngine` must produce byte-identical
``signature()`` (rules with exact counts) to the monolithic engine at
every flush boundary — and both must agree with a from-scratch re-mine.
This suite drives randomized streams (seeded through the session
router, so any failure replays with ``--seed``) across the full grid,
including shard-skewed streams where one shard receives ~all inserts
and shard counts exceeding the tuple count.

``REPRO_SHARDS`` (the CI axis) folds an extra shard count into the
grid, so the axis job re-runs the differential suite at that layout;
``REPRO_SHARD_EXECUTOR`` does the same for the phase-1 executor, so
the ``process`` job re-proves indistinguishability with the shard
mines running in worker processes over shared bitmap pages.
"""

import os

import pytest

from repro.core.engine import engine
from repro.mining.backend import available_backends
from repro.shard import ShardedEngine
from repro.synth.streams import EventStream, StreamConfig, apply_to_relation
from tests.conftest import assert_equivalent_to_remine, make_relation

COUNTERS = ("auto", "vertical")
SHARD_COUNTS = tuple(sorted({1, 2, 3, 7,
                             int(os.environ.get("REPRO_SHARDS", "1"))}))
EXECUTORS = tuple(dict.fromkeys(
    ("thread", os.environ.get("REPRO_SHARD_EXECUTOR", "thread"))))
SEEDS = (3, 29)


def drawn_events(relation, count, seed, config=None):
    """A valid event sequence drawn against a shadow copy."""
    shadow = relation.copy()
    stream = EventStream(shadow, config if config is not None
                         else StreamConfig(seed=seed, batch_size=4))
    return list(stream.take(
        count, apply=lambda event: apply_to_relation(shadow, event)))


def mined_pair(relation, backend, counter, shards, *, partitioner=None,
               executor="thread"):
    """(monolithic, sharded) engines over private copies, both mined."""
    mono = engine(relation.copy(), min_support=0.25, min_confidence=0.6,
                  backend=backend, counter=counter, validate=True)
    mono.mine()
    sharded = ShardedEngine(relation.copy(),
                            min_support=0.25, min_confidence=0.6,
                            backend=backend, counter=counter,
                            validate=True, shards=shards,
                            # Single-core CI boxes report cpu_count 1,
                            # which would quietly serialize phase 1;
                            # pin 2 workers so the chosen pool engages.
                            shard_workers=2 if executor == "process"
                            else None,
                            shard_executor=executor,
                            partitioner=partitioner)
    sharded.mine()
    return mono, sharded


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("counter", COUNTERS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_equals_monolithic_at_every_boundary(backend, counter,
                                                     shards, executor,
                                                     seed, seeds):
    """Initial mine and every flush boundary of a randomized stream
    agree between the sharded and the monolithic engine."""
    relation = make_relation()
    events = drawn_events(relation, count=12, seed=seeds.seed(seed))
    mono, sharded = mined_pair(relation, backend, counter, shards,
                               executor=executor)
    assert sharded.signature() == mono.signature(), (
        f"initial mine diverged (backend={backend}, counter={counter}, "
        f"shards={shards}, executor={executor})")

    rng = seeds.rng(seed * 101 + shards)
    cut_count = rng.randint(1, 4)
    cuts = sorted(rng.sample(range(1, len(events)), cut_count))
    for start, stop in zip([0, *cuts], [*cuts, len(events)]):
        batch = events[start:stop]
        mono.apply_batch(batch)
        sharded.apply_batch(batch)
        assert sharded.signature() == mono.signature(), (
            f"flush boundary {start}:{stop} diverged (backend={backend}, "
            f"counter={counter}, shards={shards}, executor={executor}, "
            f"seed={seed})")
        assert sharded.db_size == mono.db_size
    assert len(sharded.table) == len(mono.table)
    assert_equivalent_to_remine(sharded)


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("shards", (2, 3))
def test_shard_skewed_insert_stream(backend, shards, seeds):
    """A partitioner sending ~every new insert to shard 0 (hot-shard
    skew) must not change any answer — only the layout."""
    relation = make_relation()
    base = relation.tid_range

    def skewed(tid: int) -> int:
        return tid % shards if tid < base else 0

    stream_config = StreamConfig(
        seed=seeds.seed(47), batch_size=3,
        weight_insert_annotated=6.0,
        weight_insert_unannotated=2.0,
        weight_add_annotations=1.0,
        weight_remove_annotations=0.5,
        weight_remove_tuples=0.25,
    )
    events = drawn_events(relation, count=14, seed=None,
                          config=stream_config)
    mono, sharded = mined_pair(relation, backend, "auto", shards,
                               partitioner=skewed)
    mono.apply_batch(events)
    sharded.apply_batch(events)

    assert sharded.signature() == mono.signature()
    # The skew really happened: every post-mine insert is on shard 0.
    new_tids = [tid for tid in range(base, sharded.relation.tid_range)]
    assert new_tids, "stream drew no inserts — skew scenario unexercised"
    assert all(sharded.shard_of(tid) in (0, None) for tid in new_tids)
    assert sharded.shard_engines[0].relation.tid_range > 0
    assert_equivalent_to_remine(sharded)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_more_shards_than_tuples(shards, seeds):
    """Degenerate layouts (empty shards, one-tuple shards) stay exact."""
    rows = [(("1", "2"), ("A",)), (("1", "3"), ("A",)),
            (("4", "2"), ())]
    relation = make_relation(rows)
    mono, sharded = mined_pair(relation, "apriori-fup", "auto",
                               max(shards, len(rows) + 2))
    assert sharded.signature() == mono.signature()
    events = drawn_events(relation, count=6, seed=seeds.seed(11))
    mono.apply_batch(events)
    sharded.apply_batch(events)
    assert sharded.signature() == mono.signature()
    assert_equivalent_to_remine(sharded)

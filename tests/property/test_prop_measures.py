"""Property tests for interestingness measures and closed itemsets."""

import math

from hypothesis import given, settings, strategies as st

from repro.mining.apriori import mine_frequent_itemsets
from repro.mining.closed import closed_itemsets, maximal_itemsets
from repro.mining.eclat import build_vertical_index, count_itemset
from repro.mining.interest import (
    RuleCounts,
    conviction,
    jaccard,
    kulczynski,
    leverage,
    lift,
)


@st.composite
def counts_strategy(draw):
    n = draw(st.integers(min_value=1, max_value=500))
    n_lhs = draw(st.integers(min_value=0, max_value=n))
    n_rhs = draw(st.integers(min_value=0, max_value=n))
    n_both = draw(st.integers(min_value=max(0, n_lhs + n_rhs - n),
                              max_value=min(n_lhs, n_rhs)))
    return RuleCounts(n=n, n_lhs=n_lhs, n_rhs=n_rhs, n_both=n_both)


@given(counts=counts_strategy())
@settings(max_examples=150, deadline=None)
def test_measure_ranges(counts):
    assert lift(counts) >= 0.0
    assert -0.25 <= leverage(counts) <= 0.25  # classic leverage bounds
    assert 0.0 <= jaccard(counts) <= 1.0
    assert 0.0 <= kulczynski(counts) <= 1.0
    value = conviction(counts)
    assert value >= 0.0 or math.isinf(value)


@given(counts=counts_strategy())
@settings(max_examples=150, deadline=None)
def test_lift_and_leverage_agree_on_direction(counts):
    """lift > 1 iff leverage > 0 (both measure the same deviation)."""
    if counts.n_lhs and counts.n_rhs:
        assert (lift(counts) > 1.0) == (leverage(counts) > 0.0)


@given(counts=counts_strategy())
@settings(max_examples=100, deadline=None)
def test_symmetry(counts):
    """Jaccard and Kulczynski are symmetric in LHS/RHS."""
    flipped = RuleCounts(n=counts.n, n_lhs=counts.n_rhs,
                         n_rhs=counts.n_lhs, n_both=counts.n_both)
    assert jaccard(counts) == jaccard(flipped)
    assert kulczynski(counts) == kulczynski(flipped)


transactions_strategy = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=7), max_size=5),
    min_size=0, max_size=20)


@given(transactions=transactions_strategy,
       min_count=st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_closed_itemsets_lossless(transactions, min_count):
    """Closure is a lossless compression: every frequent itemset's
    count is recoverable as the max count over closed supersets."""
    table = mine_frequent_itemsets(transactions, min_count=min_count)
    closed = closed_itemsets(table)
    for itemset, count in table.items():
        candidates = [closed_count
                      for closed_set, closed_count in closed.items()
                      if set(itemset) <= set(closed_set)]
        assert candidates, f"{itemset} has no closed superset"
        assert max(candidates) == count


@given(transactions=transactions_strategy,
       min_count=st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_maximal_within_closed(transactions, min_count):
    table = mine_frequent_itemsets(transactions, min_count=min_count)
    closed = set(closed_itemsets(table))
    maximal = set(maximal_itemsets(table))
    assert maximal <= closed
    # Every frequent itemset is under some maximal one.
    for itemset in table:
        assert any(set(itemset) <= set(top) for top in maximal)


@given(transactions=transactions_strategy)
@settings(max_examples=60, deadline=None)
def test_vertical_counts_match_horizontal(transactions):
    index = build_vertical_index(transactions)
    for item in index:
        expected = sum(1 for transaction in transactions
                       if item in transaction)
        assert count_itemset(index, (item,)) == expected

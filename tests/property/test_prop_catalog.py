"""Catalog queries == brute-force linear scans, on any maintained state.

The catalog is pure read-path machinery: whatever rule set incremental
maintenance produced, every indexed answer must equal the answer a
linear scan over ``engine.rules`` gives.  This suite drives randomized
event streams through every backend × counting substrate, then checks
the full query surface — by-item, by-RHS, by-kind, metric top-k,
pagination, and composed filters — against brute force over the same
rules with the same tie-breaks.
"""

import pytest

from repro.core.catalog import METRICS, metric_key
from repro.core.engine import engine
from repro.core.rules import RuleKind
from repro.mining.backend import available_backends
from repro.synth.streams import EventStream, StreamConfig, apply_to_relation
from tests.conftest import make_relation

COUNTERS = ("auto", "vertical")
SEEDS = (5, 23)


def drawn_events(relation, count, seed):
    shadow = relation.copy()
    stream = EventStream(shadow, StreamConfig(seed=seed, batch_size=3))
    return list(stream.take(
        count, apply=lambda event: apply_to_relation(shadow, event)))


def maintained_engine(backend, counter, seed):
    relation = make_relation()
    events = drawn_events(relation, count=8, seed=seed)
    eng = engine(relation, min_support=0.25, min_confidence=0.6,
                 backend=backend, counter=counter, validate=True)
    eng.mine()
    eng.apply_batch(events)
    return eng


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("counter", COUNTERS)
@pytest.mark.parametrize("seed", SEEDS)
def test_every_catalog_query_equals_linear_scan(backend, counter, seed,
                                               seeds):
    eng = maintained_engine(backend, counter, seeds.seed(seed))
    catalog = eng.catalog()
    rules = list(eng.rules)
    context = f"(backend={backend}, counter={counter}, seed={seed})"
    assert len(catalog) == len(rules), context

    all_items = sorted({item for rule in rules
                        for item in rule.union_itemset})
    assert list(catalog.items()) == all_items, context
    for item in all_items + [max(all_items, default=0) + 10]:
        brute = [rule for rule in catalog.rules
                 if item in rule.union_itemset]
        assert list(catalog.mentioning(item)) == brute, context
        assert list(catalog.query().mentioning(item).all()) == brute, context

    all_rhs = sorted({rule.rhs for rule in rules})
    assert list(catalog.rhs_items()) == all_rhs, context
    for rhs in all_rhs:
        brute = [rule for rule in catalog.rules if rule.rhs == rhs]
        assert list(catalog.with_rhs(rhs)) == brute, context
        assert list(catalog.query().with_rhs(rhs).all()) == brute, context

    for kind in RuleKind:
        brute = [rule for rule in catalog.rules if rule.kind is kind]
        assert list(catalog.of_kind(kind)) == brute, context

    for metric in METRICS:
        brute = sorted(rules, key=metric_key(metric))
        assert list(catalog.ordered_by(metric)) == brute, context
        for n in (0, 1, 3, len(rules) + 5):
            assert list(catalog.top(n, by=metric)) == brute[:n], context


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("counter", COUNTERS)
@pytest.mark.parametrize("seed", SEEDS)
def test_paged_and_composed_queries_equal_linear_scan(backend, counter,
                                                      seed, seeds):
    eng = maintained_engine(backend, counter, seeds.seed(seed))
    catalog = eng.catalog()
    rules = list(eng.rules)
    rng = seeds.rng(seed * 13 + 1)
    context = f"(backend={backend}, counter={counter}, seed={seed})"

    # Random pages over each metric ordering re-join into the whole.
    for metric in METRICS:
        brute = sorted(rules, key=metric_key(metric))
        page_size = rng.randint(1, max(1, len(rules) // 2))
        rejoined = []
        for offset in range(0, len(rules) + page_size, page_size):
            rejoined.extend(
                catalog.query().order_by(metric)
                .page(offset, page_size).all())
        assert rejoined == brute, context

    # Composed filter + ordering + window, vs the same pipeline by hand.
    floor = rng.choice((0.0, 0.6, 0.8, 1.0))
    for kind in RuleKind:
        for metric in METRICS:
            query = (catalog.query().of_kind(kind).min_confidence(floor)
                     .order_by(metric).page(1, 2))
            brute = sorted(
                (rule for rule in rules
                 if rule.kind is kind and rule.confidence >= floor),
                key=metric_key(metric))[1:3]
            assert list(query.all()) == brute, context
            assert query.count() == sum(
                1 for rule in rules
                if rule.kind is kind and rule.confidence >= floor), context

    # explain() must name a real index and truthful candidate counts.
    if rules:
        probe = rng.choice(rules)
        explain = (catalog.query().with_rhs(probe.rhs)
                   .order_by("lift").explain())
        assert explain.index == "rhs", context
        assert explain.candidates == len(catalog.with_rhs(probe.rhs)), context
        assert explain.matched == explain.candidates, context

"""Differential suite: shared-memory pages ≡ big-int bitmaps.

The buffer-backed substrate (:mod:`repro.mining.pages`) must be
*indistinguishable* from the in-process big-int substrate
(:mod:`repro.mining.bitmap`): every tidset operation the vertical
miners use, every index query, and the SON phase-2 merge must produce
identical answers whether the bits live in a Python int or in a
shared-memory page.  Randomized op sequences are seeded through the
session router (replay any failure with ``--seed``); fixed cases pin
the byte/word seams and the tid-0 / max-tid edges.

Every test asserts the leak invariant on exit: no segment created here
may outlive its test (``live_segments()`` empty).
"""

import pytest

from repro.mining.bitmap import BitmapIndex, BitTidset
from repro.mining.eclat import mine_frequent_itemsets_vertical
from repro.mining.pages import (
    BitmapPageSegment,
    BufferTidset,
    live_segments,
)
from repro.mining.son import merge_counts


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this module must tear down what it packs."""
    before = live_segments()
    yield
    assert live_segments() == before, (
        "test leaked shared-memory segments")


def packed_tidsets(tid_sets):
    """One segment holding ``tid_sets`` as items 0..n-1 of shard 0,
    plus the equivalent big-int tidsets."""
    big = {item: BitTidset.from_tids(tids)
           for item, tids in enumerate(tid_sets)}
    segment = BitmapPageSegment.pack([big])
    paged = segment.shard_mapping(0)
    return segment, big, paged


FIXED_CASES = [
    [set()],
    [{0}],
    [{63}, {64}, {65}],                      # word seam
    [{7, 8}, {0, 7, 8, 15, 16}],             # byte seams
    [{0, 511, 512, 513}],
    [set(range(64))],                        # dense full word
    [set(range(130)), {129}],                # max tid at an odd width
    [{0}, set(), {70_000}],                  # empty page between pages
]


class TestBufferTidsetDifferential:
    @pytest.mark.parametrize("tid_sets", FIXED_CASES)
    def test_fixed_edge_cases(self, tid_sets):
        with BitmapPageSegment.pack(
                [{item: BitTidset.from_tids(tids)
                  for item, tids in enumerate(tid_sets)}]) as segment:
            paged = segment.shard_mapping(0)
            for item, tids in enumerate(tid_sets):
                buffered = paged[item]
                assert isinstance(buffered, BufferTidset)
                assert set(buffered) == tids
                assert len(buffered) == len(tids)
                assert bool(buffered) == bool(tids)
                assert buffered.bits == BitTidset.from_tids(tids).bits

    def test_randomized_op_sequences(self, seeds):
        """Random ``&``/``|``/``-``/len/in/iter/truthiness programs
        agree between the two representations, in both mixed orders
        (buffer op big-int and big-int op buffer)."""
        rng = seeds.rng(83)
        for _ in range(15):
            universe = rng.choice((70, 65, 513))
            tid_sets = [
                set(rng.sample(range(universe),
                               rng.randint(0, universe // 2)))
                for _ in range(rng.randint(1, 6))
            ]
            segment, big, paged = packed_tidsets(tid_sets)
            with segment:
                for _ in range(40):
                    left = rng.randrange(len(tid_sets))
                    right = rng.randrange(len(tid_sets))
                    op = rng.choice(("&", "|", "-", "len", "in", "iter",
                                     "bool", "disjoint"))
                    if op == "in":
                        probe = rng.randrange(universe + 2)
                        reference = probe in big[left]
                        mixed = buffered = probe in paged[left]
                    else:
                        reference, mixed, buffered = {
                            "&": lambda: (big[left] & big[right],
                                          big[left] & paged[right],
                                          paged[left] & paged[right]),
                            "|": lambda: (big[left] | big[right],
                                          big[left] | paged[right],
                                          paged[left] | paged[right]),
                            "-": lambda: (big[left] - big[right],
                                          big[left] - paged[right],
                                          paged[left] - paged[right]),
                            "len": lambda: (len(big[left]),) + (
                                len(paged[left]),) * 2,
                            "iter": lambda: (list(big[left]),) + (
                                list(paged[left]),) * 2,
                            "bool": lambda: (bool(big[left]),) + (
                                bool(paged[left]),) * 2,
                            "disjoint": lambda: (
                                big[left].isdisjoint(big[right]),
                                big[left].isdisjoint(paged[right]),
                                paged[left].isdisjoint(paged[right])),
                        }[op]()
                    assert mixed == reference, op
                    assert buffered == reference, op

    def test_materialization_is_lazy_and_cached(self):
        with BitmapPageSegment.pack(
                [{5: BitTidset.from_tids({1, 64})}]) as segment:
            tidset = segment.shard_mapping(0)[5]
            # Reading through the slot descriptor bypasses __getattr__:
            # the _bits slot must be unset until an operation needs it.
            slot = BitTidset.__dict__["_bits"]
            with pytest.raises(AttributeError):
                slot.__get__(tidset, type(tidset))
            assert len(tidset) == 2          # materializes
            assert slot.__get__(tidset, type(tidset)) == tidset.bits
            assert tidset.bits == (1 << 1) | (1 << 64)
            assert tidset.page_bytes == 9

    def test_closed_segment_blocks_fresh_materialization(self):
        segment = BitmapPageSegment.pack(
            [{1: BitTidset.from_tids({3}), 2: BitTidset.from_tids({9})}])
        view = segment.shard_mapping(0)
        touched = view[1]
        assert 3 in touched                  # cached before close
        untouched = view[2]
        segment.close()
        segment.unlink()
        assert 3 in touched                  # survives on its cache
        with pytest.raises(ValueError):
            len(untouched)                   # released buffer


class TestPagedIndexDifferential:
    def test_index_queries_match_bitmap_index(self, seeds):
        rng = seeds.rng(89)
        for _ in range(8):
            transactions = [
                frozenset(rng.sample(range(12), rng.randint(0, 7)))
                for _ in range(rng.randint(1, 40))
            ]
            reference = BitmapIndex.from_transactions(transactions)
            with BitmapPageSegment.pack(
                    [reference.as_mapping()]) as segment:
                paged = segment.shard_index(0)
                assert paged.items() == reference.items()
                assert len(paged) == len(reference)
                for item in reference.items():
                    assert item in paged
                    assert paged.frequency(item) == reference.frequency(item)
                    assert paged.tidset(item) == reference.tidset(item)
                items = reference.items()
                for _ in range(20):
                    itemset = tuple(sorted(rng.sample(
                        items, rng.randint(1, min(4, len(items))))))
                    assert paged.count(itemset) == reference.count(itemset)
                    assert paged.tids_of(itemset) == reference.tids_of(
                        itemset)
                assert paged.count((99,)) == 0
                assert paged.frequency(99) == 0
                with pytest.raises(ValueError):
                    paged.count(())
                with pytest.raises(ValueError):
                    paged.tids_of(())

    def test_vertical_mine_identical_over_pages(self, seeds):
        """The eclat search itself — extensions ordering, DFS, floors —
        returns the identical table over pages and big ints."""
        rng = seeds.rng(97)
        for _ in range(5):
            transactions = [
                frozenset(rng.sample(range(10), rng.randint(1, 6)))
                for _ in range(rng.randint(5, 30))
            ]
            index = BitmapIndex.from_transactions(transactions)
            floor = rng.randint(1, 4)
            expected = mine_frequent_itemsets_vertical(
                transactions, min_count=floor, index=index.as_mapping())
            with BitmapPageSegment.pack([index.as_mapping()]) as segment:
                got = mine_frequent_itemsets_vertical(
                    (), min_count=floor, index=segment.shard_mapping(0))
            assert got == expected

    def test_merge_counts_identical_over_pages(self, seeds):
        """SON phase 2 over shard pages equals phase 2 over the live
        shard bitmap indexes — the zero-copy merge path."""
        rng = seeds.rng(101)
        shard_indexes = []
        for _ in range(3):
            transactions = [
                frozenset(rng.sample(range(9), rng.randint(0, 5)))
                for _ in range(rng.randint(1, 25))
            ]
            shard_indexes.append(BitmapIndex.from_transactions(transactions))
        union = set()
        for index in shard_indexes:
            union.update(
                mine_frequent_itemsets_vertical(
                    (), min_count=2, index=index.as_mapping()))
        reference = merge_counts(
            union, [index.as_mapping() for index in shard_indexes], floor=4)
        with BitmapPageSegment.pack(
                [index.as_mapping() for index in shard_indexes]) as segment:
            assert segment.shard_count == 3
            paged = merge_counts(
                union,
                [segment.shard_mapping(shard) for shard in range(3)],
                floor=4)
        assert paged == reference

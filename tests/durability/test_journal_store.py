"""Journal-store recovery: snapshot + replay == the live engine.

The store's contract is replay equivalence — recovering a directory
must rebuild the exact rule signature the live engine had at the
recovered sequence, whether the recovery starts from the base
snapshot, a compacted one, or falls back past a rotted file.
"""

import json
import os

import pytest

from repro.core.engine import engine
from repro.core.events import AddAnnotations, RemoveAnnotations, RemoveTuples
from repro.core.journal import JournalStore
from repro.errors import FormatError
from tests.conftest import make_relation

#: A deterministic flush history over the reference relation: each
#: entry is one journaled batch (annotations A/B correlate with values
#: "1"/"3", so these shift real rule counts, not dead weight).
BATCHES = [
    [AddAnnotations.build([(3, "A")])],
    [AddAnnotations.build([(7, "B")]),
     RemoveAnnotations.build([(0, "A")])],
    [RemoveTuples.build([5])],
    [AddAnnotations.build([(4, "A")])],
]


def mined_engine():
    manager = engine(make_relation(), min_support=0.25,
                     min_confidence=0.6, validate=True)
    manager.mine()
    return manager


def drive(store, manager, batches=BATCHES):
    """Journal-then-apply each batch (the service's flush order);
    returns the live signature at every boundary, keyed by seq."""
    boundaries = {store.last_seq: manager.signature()}
    for batch in batches:
        seq = store.append_batch(batch)
        manager.apply_batch(list(batch))
        store.maybe_snapshot(manager, seq)
        boundaries[seq] = manager.signature()
    return boundaries


class TestBaseSnapshot:
    def test_first_attach_writes_the_base(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        manager = mined_engine()
        assert not store.has_snapshot
        assert store.ensure_base_snapshot(manager)
        assert [seq for seq, _ in store.snapshots()] == [0]
        assert not store.ensure_base_snapshot(manager)  # idempotent
        store.close()
        manager.close()

    def test_recover_without_any_snapshot_refuses(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        store.append_batch(BATCHES[0])
        with pytest.raises(FormatError, match="nothing to recover"):
            store.recover()
        store.close()


class TestRecovery:
    def test_recover_matches_live_at_the_tail(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        drive(store, manager)
        result = store.recover()
        assert result.snapshot_seq == 0
        assert result.last_seq == len(BATCHES)
        assert result.replay.records == len(BATCHES)
        assert result.replay.events == sum(map(len, BATCHES))
        assert result.engine.signature() == manager.signature()
        assert result.engine.db_size == manager.db_size
        result.engine.close()
        store.close()
        manager.close()

    def test_point_in_time_at_every_boundary(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        boundaries = drive(store, manager)
        for seq, signature in boundaries.items():
            result = store.recover(upto=seq)
            assert result.last_seq == seq
            assert result.engine.signature() == signature, (
                f"point-in-time recovery to seq {seq} diverged")
            result.engine.close()
        store.close()
        manager.close()

    def test_mine_records_replay(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        store.append_batch(BATCHES[0])
        manager.apply_batch(list(BATCHES[0]))
        store.append_mine()
        manager.mine()
        result = store.recover()
        assert result.replay.mines == 1
        assert result.engine.signature() == manager.signature()
        result.engine.close()
        store.close()
        manager.close()

    def test_recovery_prefers_the_newest_snapshot(self, tmp_path):
        store = JournalStore(tmp_path / "s", snapshot_every=2)
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        drive(store, manager)
        assert len(store.snapshots()) > 1
        result = store.recover()
        assert result.snapshot_seq == store.snapshots()[-1][0]
        # The suffix replayed is exactly tail - snapshot.
        assert result.replay.records \
            == result.last_seq - result.snapshot_seq
        assert result.engine.signature() == manager.signature()
        result.engine.close()
        store.close()
        manager.close()

    def test_rotted_snapshot_falls_back_to_an_older_one(self, tmp_path):
        store = JournalStore(tmp_path / "s", snapshot_every=2)
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        drive(store, manager)
        newest_seq, newest_path = store.snapshots()[-1]
        with open(newest_path, "w", encoding="utf-8") as handle:
            handle.write('{"format_version": 4, "truncated')  # bit rot
        result = store.recover()
        assert result.snapshot_seq < newest_seq
        assert result.engine.signature() == manager.signature()
        result.engine.close()
        store.close()
        manager.close()

    def test_snapshot_lying_about_its_seq_is_skipped(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        drive(store, manager)
        # A v4 snapshot's body records the seq it was taken at; a
        # renamed file claims a different history point and must not
        # short-circuit the replay.
        with open(store.snapshot_path(0), encoding="utf-8") as handle:
            base = handle.read()
        with open(store.snapshot_path(3), "w",
                  encoding="utf-8") as handle:
            handle.write(base)
        result = store.recover()
        assert result.snapshot_seq == 0  # the liar was rejected
        assert result.engine.signature() == manager.signature()
        result.engine.close()
        store.close()
        manager.close()

    def test_every_snapshot_rotten_refuses_loudly(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        manager.close()
        with open(store.snapshot_path(0), "w",
                  encoding="utf-8") as handle:
            handle.write("not json")
        with pytest.raises(FormatError, match="restores cleanly"):
            store.recover()
        store.close()


class TestCompaction:
    def test_compact_trims_and_recovery_still_works(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        drive(store, manager)
        trimmed = store.compact(manager, store.last_seq,
                                keep_snapshots=1)
        assert trimmed == len(BATCHES)
        status = store.status()
        assert status["snapshots"] == [len(BATCHES)]
        assert status["floor_seq"] == status["last_seq"] == len(BATCHES)
        result = store.recover()
        assert result.engine.signature() == manager.signature()
        assert result.replay.records == 0  # pure snapshot load
        result.engine.close()
        store.close()
        manager.close()

    def test_sequence_survives_full_trim_and_reopen(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        drive(store, manager)
        store.compact(manager, store.last_seq, keep_snapshots=1)
        # Appends continue past the compacted history...
        assert store.append_batch(BATCHES[0]) == len(BATCHES) + 1
        store.close()
        # ...and so does a cold reopen of the directory.
        reopened = JournalStore(tmp_path / "s")
        assert reopened.last_seq == len(BATCHES) + 1
        reopened.close()
        manager.close()

    def test_point_in_time_below_the_floor_refuses(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        boundaries = drive(store, manager)
        store.compact(manager, store.last_seq, keep_snapshots=1)
        with pytest.raises(FormatError, match="compacted away"):
            store.recover(upto=1)
        # At the floor itself the snapshot serves.
        result = store.recover(upto=len(BATCHES))
        assert result.engine.signature() == boundaries[len(BATCHES)]
        result.engine.close()
        store.close()
        manager.close()

    def test_keep_snapshots_retains_a_recovery_window(self, tmp_path):
        store = JournalStore(tmp_path / "s", snapshot_every=1)
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        boundaries = drive(store, manager)
        store.compact(manager, store.last_seq, keep_snapshots=2)
        floor = store.snapshots()[0][0]
        # Every seq at or above the oldest retained snapshot is still
        # a reachable point in time.
        for seq in range(floor, len(BATCHES) + 1):
            result = store.recover(upto=seq)
            assert result.engine.signature() == boundaries[seq]
            result.engine.close()
        store.close()
        manager.close()

    def test_snapshot_cadence(self, tmp_path):
        store = JournalStore(tmp_path / "s", snapshot_every=2)
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        drive(store, manager)
        assert [seq for seq, _ in store.snapshots()] == [0, 2, 4]
        store.close()
        manager.close()


class TestAlignment:
    """The journal's sequence state must survive any reopen order."""

    def test_snapshot_ahead_of_an_empty_journal_advances_it(
            self, tmp_path):
        store = JournalStore(tmp_path / "s")
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        drive(store, manager)
        store.compact(manager, store.last_seq, keep_snapshots=1)
        store.close()
        # Delete the (fully trimmed) journal: only snapshots remain.
        # Reopening scaffolds a fresh WAL and must re-anchor it.
        os.remove(os.path.join(store.directory, "events.wal"))
        reopened = JournalStore(tmp_path / "s")
        assert reopened.last_seq == len(BATCHES)
        assert reopened.append_batch(BATCHES[0]) == len(BATCHES) + 1
        reopened.close()
        manager.close()

    def test_snapshot_ahead_of_a_nonempty_journal_refuses(
            self, tmp_path):
        store = JournalStore(tmp_path / "s")
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        store.append_batch(BATCHES[0])
        store.close()
        manager.close()
        # A snapshot claiming seq 5 while the journal tail is seq 1
        # means acknowledged records vanished — refuse, don't reuse.
        with open(os.path.join(store.directory,
                               "snapshot-0000000005.json"), "w",
                  encoding="utf-8") as handle:
            json.dump({"format_version": 4}, handle)
        with pytest.raises(FormatError, match="records were lost"):
            JournalStore(tmp_path / "s")


class TestStatus:
    def test_status_summarizes_the_store(self, tmp_path):
        store = JournalStore(tmp_path / "s", snapshot_every=2)
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        drive(store, manager)
        status = store.status()
        assert status["last_seq"] == len(BATCHES)
        assert status["floor_seq"] == 0
        assert status["snapshots"] == [0, 2, 4]
        assert status["truncated_bytes"] == 0
        assert status["directory"] == store.directory
        store.close()
        manager.close()

"""Crash injection: every durability fault point, plus a real SIGKILL.

The deterministic half drives the store with a fault hook that fires
at one :data:`~repro.core.journal.FAULT_POINTS` member per test and
asserts the reopened directory recovers to the last durable boundary —
torn tails truncated, never a torn snapshot, never lost acknowledged
history.  The subprocess half SIGKILLs a live journaled service mid-
traffic and recovers whatever hit the disk.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.core.engine import engine
from repro.core.journal import FAULT_POINTS, CrashInjected, JournalStore
from tests.conftest import make_relation
from tests.durability.test_journal_store import BATCHES, drive


class CrashAt:
    """Fault hook raising (or tearing) at one named point."""

    def __init__(self, point, budget=None):
        self.point = point
        self.budget = budget
        self.fired = False

    def __call__(self, point):
        if point != self.point:
            return None
        self.fired = True
        if self.budget is not None:
            return self.budget  # journal.append: torn partial write
        raise CrashInjected(point)


def mined_engine():
    manager = engine(make_relation(), min_support=0.25,
                     min_confidence=0.6, validate=True)
    manager.mine()
    return manager


def recover_fresh(directory):
    """What a restart does: open the directory cold and recover.

    Torn tails are truncated by the *open* (the recover's own reopen
    then sees a clean file), so the open-time count is returned too.
    """
    store = JournalStore(directory)
    torn = store.journal.truncated_bytes
    try:
        return store.recover(), store.status(), torn
    finally:
        store.close()


class TestFaultPoints:
    @pytest.mark.parametrize("budget", [1, 7, 23])
    def test_crash_mid_append_loses_only_the_torn_record(
            self, tmp_path, budget):
        store = JournalStore(tmp_path / "s")
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        drive(store, manager, BATCHES[:2])
        durable = manager.signature()
        hook = CrashAt("journal.append", budget=budget)
        store.fault_hook = store.journal.fault_hook = hook
        with pytest.raises(CrashInjected):
            store.append_batch(BATCHES[2])
        assert hook.fired
        store.close()
        result, status, torn = recover_fresh(tmp_path / "s")
        assert torn == budget
        assert result.last_seq == 2
        assert result.engine.signature() == durable
        assert status["last_seq"] == 2  # sequence resumes, not resets
        result.engine.close()
        manager.close()

    @pytest.mark.parametrize("point",
                             ["snapshot.written", "snapshot.renamed"])
    def test_crash_around_snapshot_rename_never_tears(self, tmp_path,
                                                      point):
        store = JournalStore(tmp_path / "s",
                             fault_hook=CrashAt(point))
        manager = mined_engine()
        with pytest.raises(CrashInjected):
            store.ensure_base_snapshot(manager)
        # Before the rename: no snapshot at all.  After: the complete
        # one.  Never a half-written file posing as a snapshot.
        snapshots = store.snapshots()
        if point == "snapshot.written":
            assert snapshots == []
            assert os.path.exists(store.snapshot_path(0) + ".tmp")
        else:
            assert [seq for seq, _ in snapshots] == [0]
        store.close()
        # The restart ignores stale .tmp files and serves whatever
        # durable state exists.
        store = JournalStore(tmp_path / "s")
        store.ensure_base_snapshot(manager)
        drive(store, manager, BATCHES[:1])
        store.close()
        result, _status, _torn = recover_fresh(tmp_path / "s")
        assert result.engine.signature() == manager.signature()
        result.engine.close()
        manager.close()

    def test_crash_mid_compaction_keeps_the_full_journal(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        manager = mined_engine()
        store.ensure_base_snapshot(manager)
        drive(store, manager)
        hook = CrashAt("compact.trim")
        store.fault_hook = hook
        with pytest.raises(CrashInjected):
            store.compact(manager, store.last_seq, keep_snapshots=1)
        assert hook.fired
        store.close()
        # The trim never landed: the whole history is still replayable
        # and recovery picks the freshly-written compaction snapshot.
        result, status, _torn = recover_fresh(tmp_path / "s")
        assert status["last_seq"] == len(BATCHES)
        assert result.snapshot_seq == len(BATCHES)
        assert result.engine.signature() == manager.signature()
        result.engine.close()
        manager.close()

    def test_every_fault_point_is_exercised(self):
        covered = {"journal.append", "snapshot.written",
                   "snapshot.renamed", "compact.trim"}
        assert covered == set(FAULT_POINTS)


CHILD = textwrap.dedent("""\
    import sys

    from repro.app.service import CorrelationService
    from repro.core.config import EngineConfig
    from repro.core.events import AddAnnotations, RemoveAnnotations
    from tests.conftest import make_relation

    service = CorrelationService(
        config=EngineConfig(min_support=0.25, min_confidence=0.6),
        journal_dir=sys.argv[1])
    service.create("victim", make_relation())
    for round in range(1000):
        tid = round % 8
        service.submit("victim", AddAnnotations.build([(tid, "B")]))
        service.submit("victim", RemoveAnnotations.build([(tid, "B")]))
        service.flush("victim")
        # Acknowledge only after flush returns: everything printed is
        # fsync-durable and must survive the kill.
        print(f"ACK {round + 1}", flush=True)
""")


class TestSigkill:
    def test_sigkill_mid_traffic_recovers_every_acked_flush(
            self, tmp_path):
        src = os.path.dirname(os.path.dirname(
            os.path.dirname(repro.__file__)))
        script = tmp_path / "victim.py"
        script.write_text(CHILD)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(src, "src"), src]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        child = subprocess.Popen(
            [sys.executable, str(script), str(tmp_path / "journal")],
            stdout=subprocess.PIPE, text=True, env=env, cwd=src)
        acked = 0
        try:
            for line in child.stdout:
                if line.startswith("ACK "):
                    acked = int(line.split()[1])
                if acked >= 5:
                    break
            child.send_signal(signal.SIGKILL)
        finally:
            child.wait(timeout=30)
            child.stdout.close()
        assert acked >= 5

        result, _, _ = recover_fresh(tmp_path / "journal" / "victim")
        try:
            # Two events per acked flush, all of them replayed (the
            # kill may have left one extra durable-but-unacked record).
            assert result.last_seq >= acked
            assert result.engine.verify_against_remine().equivalent
            # Recovery is deterministic: a second restart agrees.
            again, _, _ = recover_fresh(tmp_path / "journal" / "victim")
            assert again.engine.signature() == result.engine.signature()
            again.engine.close()
        finally:
            result.engine.close()

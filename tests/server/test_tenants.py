"""Tenant registry and the JSON wire codecs."""

import pytest

from repro.app.service import CorrelationService
from repro.core.config import EngineConfig
from repro.core.events import (
    AddAnnotatedTuples,
    AddAnnotations,
    AddUnannotatedTuples,
    RemoveAnnotations,
    RemoveTuples,
)
from repro.errors import ServerError, SessionError
from repro.server.tenants import (
    TenantRegistry,
    engine_config_from_json,
    engine_config_to_json,
    event_from_json,
    parse_metric,
    parse_rule_kind,
    rule_to_json,
)

ENGINE = EngineConfig(min_support=0.25, min_confidence=0.6)

ROWS = [
    [["a", "x"], ["A1"]],
    [["a", "y"], ["A1"]],
    [["b", "x"], ["A2"]],
    [["a", "x"], ["A1", "A2"]],
]


@pytest.fixture
def registry():
    return TenantRegistry(CorrelationService(), default_engine=ENGINE)


class TestEngineConfigCodec:
    def test_overrides_merge_onto_template(self):
        config = engine_config_from_json({"min_support": 0.5}, ENGINE)
        assert config.min_support == 0.5
        assert config.min_confidence == ENGINE.min_confidence

    def test_no_template_requires_thresholds(self):
        with pytest.raises(ServerError, match="incomplete engine config"):
            engine_config_from_json({"backend": "eclat"}, None)

    def test_unknown_field_rejected_by_name(self):
        with pytest.raises(ServerError, match="min_suport"):
            engine_config_from_json({"min_suport": 0.5}, ENGINE)

    def test_round_trip(self):
        rendered = engine_config_to_json(ENGINE)
        assert rendered["min_support"] == 0.25
        restored = engine_config_from_json(rendered, None)
        assert restored.min_confidence == ENGINE.min_confidence


class TestEventCodec:
    def test_add_annotations(self):
        event = event_from_json(
            {"type": "add_annotations", "additions": [[0, "A9"]]})
        assert isinstance(event, AddAnnotations)
        assert event.additions == ((0, "A9"),)

    def test_remove_annotations(self):
        event = event_from_json(
            {"type": "remove_annotations", "removals": [[1, "A1"]]})
        assert isinstance(event, RemoveAnnotations)

    def test_add_annotated_tuples(self):
        event = event_from_json(
            {"type": "add_annotated_tuples",
             "rows": [[["a", "z"], ["A3"]]]})
        assert isinstance(event, AddAnnotatedTuples)

    def test_add_unannotated_tuples(self):
        event = event_from_json(
            {"type": "add_unannotated_tuples", "rows": [["a", "z"]]})
        assert isinstance(event, AddUnannotatedTuples)

    def test_remove_tuples(self):
        event = event_from_json({"type": "remove_tuples", "tids": [0, 2]})
        assert isinstance(event, RemoveTuples)
        assert event.tids == (0, 2)

    def test_unknown_type_rejected(self):
        with pytest.raises(ServerError, match="unknown event type"):
            event_from_json({"type": "upsert"})

    def test_extra_fields_rejected(self):
        with pytest.raises(ServerError, match="unexpected field"):
            event_from_json({"type": "remove_tuples", "tids": [0],
                             "cascade": True})

    def test_malformed_pairs_rejected(self):
        with pytest.raises(ServerError, match="tid:int"):
            event_from_json({"type": "add_annotations",
                             "additions": [["0", "A9"]]})

    def test_empty_payload_rejected_as_protocol_error(self):
        # The constructor's MaintenanceError surfaces as a 400-mapped
        # ServerError, not a server-side fault.
        with pytest.raises(ServerError, match="invalid add_annotations"):
            event_from_json({"type": "add_annotations", "additions": []})

    def test_non_object_rejected(self):
        with pytest.raises(ServerError, match="JSON object"):
            event_from_json([1, 2])


class TestParsers:
    def test_rule_kind(self):
        kind = parse_rule_kind("data-to-annotation")
        assert kind.value == "data-to-annotation"
        with pytest.raises(ServerError, match="unknown rule kind"):
            parse_rule_kind("bogus")

    def test_metric(self):
        assert parse_metric("lift") == "lift"
        with pytest.raises(ServerError, match="unknown metric"):
            parse_metric("coverage")


class TestRegistry:
    def test_create_publishes_snapshot_and_vocabulary(self, registry):
        state = registry.create("demo", columns=["c1", "c2"], rows=ROWS)
        assert state.snapshot.revision == 1
        assert len(state.snapshot) > 0
        rendered = rule_to_json(state.snapshot.rules[0], state.vocabulary)
        assert set(rendered) >= {"kind", "lhs", "rhs", "support",
                                 "confidence", "lift", "rendered"}

    def test_bad_names_rejected(self, registry):
        for name in ("", "a/b", "a b", "x" * 65, "tenants"):
            with pytest.raises(ServerError):
                registry.create(name, rows=ROWS)

    def test_unknown_tenant_raises(self, registry):
        with pytest.raises(ServerError, match="unknown tenant"):
            registry.get("ghost")

    def test_drop_removes_and_names_sorted(self, registry):
        registry.create("beta", rows=ROWS)
        registry.create("alpha", rows=ROWS)
        assert registry.names() == ("alpha", "beta")
        registry.drop("beta")
        assert registry.names() == ("alpha",)
        assert len(registry) == 1

    def test_drop_with_pending_propagates_refusal(self, registry):
        registry.create("demo", rows=ROWS)
        registry.service.submit("demo", event_from_json(
            {"type": "add_annotations", "additions": [[0, "A9"]]}))
        with pytest.raises(SessionError, match="queued event"):
            registry.drop("demo")
        registry.drop("demo", force=True)
        assert registry.names() == ()

    def test_refresh_is_monotone_by_revision(self, registry, monkeypatch):
        state = registry.create("demo", rows=ROWS)
        first = state.snapshot
        registry.service.submit("demo", event_from_json(
            {"type": "add_annotations", "additions": [[2, "A1"]]}))
        registry.service.flush("demo")
        refreshed = registry.refresh("demo")
        assert refreshed.revision > first.revision
        assert registry.get("demo").snapshot is refreshed
        # A refresh that lost a race arrives carrying an older
        # revision; publication must not regress the read path.
        monkeypatch.setattr(registry.service, "snapshot",
                            lambda name: first)
        assert registry.refresh("demo") is first
        assert registry.get("demo").snapshot is refreshed

    def test_status_row(self, registry):
        registry.create("demo", columns=["c1", "c2"], rows=ROWS)
        status = registry.status("demo")
        assert status["tenant"] == "demo"
        assert status["rules"] > 0
        assert status["db_size"] == 4
        assert status["pending_events"] == 0
        assert status["log_complete"] is True
        assert status["config"]["min_support"] == 0.25

    def test_resolve_item(self, registry):
        registry.create("demo", columns=["c1", "c2"], rows=ROWS)
        assert registry.resolve_item("demo", "A1") is not None
        assert registry.resolve_item("demo", "nope") is None

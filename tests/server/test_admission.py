"""Admission policy: queue bounds, flush slots, Retry-After sizing."""

import pytest

from repro.errors import ServerError
from repro.server.admission import AdmissionController, retry_after_header
from repro.server.config import ServerConfig
from repro.server.metrics import MetricsRegistry


def controller(registry=None, **overrides):
    settings = dict(max_pending_events=10, max_inflight_flushes=2,
                    executor_workers=4, retry_after_floor=0.25,
                    retry_after_cap=30.0, flush_watermark=0.5)
    settings.update(overrides)
    return AdmissionController(ServerConfig(**settings), registry)


class TestEventAdmission:
    def test_admits_under_the_limit(self):
        decision = controller().admit_events("t", pending=4, incoming=6)
        assert decision and decision.queue_depth == 4
        assert decision.retry_after == 0.0

    def test_rejects_past_the_limit(self):
        decision = controller().admit_events("t", pending=5, incoming=6)
        assert not decision
        assert "queue full" in decision.reason
        assert decision.retry_after >= 0.25  # at least the floor

    def test_exact_fit_admits(self):
        assert controller().admit_events("t", pending=4, incoming=6)

    def test_zero_incoming_rejected_as_misuse(self):
        with pytest.raises(ServerError, match=">= 1 incoming"):
            controller().admit_events("t", pending=0, incoming=0)

    def test_rejections_are_counted_per_tenant(self):
        registry = MetricsRegistry()
        policy = controller(registry)
        policy.admit_events("noisy", pending=10, incoming=1)
        policy.admit_events("noisy", pending=10, incoming=1)
        assert registry.counter("admission_rejected", tenant="noisy",
                                reason="queue_full").value == 2


class TestFlushSlots:
    def test_slots_are_held_until_released(self):
        policy = controller(max_inflight_flushes=2)
        assert policy.admit_flush("a")
        assert policy.admit_flush("b")
        assert policy.inflight_flushes == 2
        rejected = policy.admit_flush("c")
        assert not rejected and "in flight" in rejected.reason
        policy.release_flush()
        assert policy.admit_flush("c")

    def test_release_without_admit_rejected(self):
        with pytest.raises(ServerError, match="without a matching"):
            controller().release_flush()


class TestRetryAfter:
    def test_cold_tenant_backs_off_at_the_floor(self):
        assert controller().retry_after("cold", queue_depth=10) == 0.25

    def test_ewma_scales_the_hint(self):
        policy = controller()
        policy.record_flush_seconds("t", 2.0)
        # Trigger depth is 5 (10 * 0.5); a queue at 10 suggests two
        # flush cycles of the 2s estimate.
        assert policy.retry_after("t", queue_depth=10) == \
            pytest.approx(4.0)

    def test_hint_is_capped(self):
        policy = controller(retry_after_cap=3.0)
        policy.record_flush_seconds("t", 100.0)
        assert policy.retry_after("t", queue_depth=10) == 3.0

    def test_ewma_folds_observations(self):
        policy = controller()
        policy.record_flush_seconds("t", 1.0)
        policy.record_flush_seconds("t", 2.0)
        # alpha=0.3: 0.3*2 + 0.7*1
        assert policy.flush_estimate("t") == pytest.approx(1.3)

    def test_forget_drops_history(self):
        policy = controller()
        policy.record_flush_seconds("t", 5.0)
        policy.forget("t")
        assert policy.flush_estimate("t") == 0.0


class TestRetryAfterHeader:
    def test_rounds_up_to_integer_seconds(self):
        assert retry_after_header(0.25) == "1"
        assert retry_after_header(1.2) == "2"
        assert retry_after_header(3.0) == "3"

    def test_never_below_one(self):
        assert retry_after_header(0.0) == "1"

"""HTTP surface of the approximate tier and the significance tier.

``estimate=true`` turns the read endpoints into sketch-backed answers
with error bounds plus an automatic exact-refresh flush behind them;
``chi_square`` / ``p_value`` floors and orderings stay exact-mode and
carry the significance figures in every rule payload.
"""

import time

import pytest

from tests.server.conftest import ROWS


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


class TestEstimateTop:
    def test_estimated_payload_shape(self, served_tenant):
        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/rules/top?n=3&estimate=true")
        assert status == 200
        assert body["estimated"] is True
        assert body["tenant"] == "demo"
        assert body["revision"] == 1
        assert body["z"] == 2.0 and body["confidence_level"] is None
        assert body["pending_events"] == 0
        assert body["flush_scheduled"] is False
        for rule in body["rules"]:
            assert rule["estimated"] is True
            for metric in ("support", "confidence", "lift"):
                assert f"{metric}_bound" in rule
                assert rule[f"{metric}_bound"] >= 0.0
            assert "rendered" in rule and "±" in rule["rendered"]
        # Reference scale: every sketch is exhaustive, answers exact.
        assert all(rule["exact"] for rule in body["rules"])

    def test_estimate_agrees_with_exact_at_small_scale(self, served_tenant):
        _, exact, _ = served_tenant.request(
            "GET", "/v1/demo/rules/top?n=5&by=support")
        _, estimated, _ = served_tenant.request(
            "GET", "/v1/demo/rules/top?n=5&by=support&estimate=true")
        exact_rules = {(tuple(r["lhs"]), r["rhs"]): r
                       for r in exact["rules"]}
        for rule in estimated["rules"]:
            twin = exact_rules[(tuple(rule["lhs"]), rule["rhs"])]
            assert rule["support"] == pytest.approx(twin["support"])
            assert rule["confidence"] == pytest.approx(twin["confidence"])

    def test_confidence_level_parameter(self, served_tenant):
        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/rules/top?estimate=true&confidence_level=0.95")
        assert status == 200
        assert body["confidence_level"] == 0.95
        assert body["z"] == pytest.approx(1.959964, abs=1e-5)

    def test_bad_confidence_level_rejected(self, served_tenant):
        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/rules/top?estimate=true&confidence_level=1.5")
        assert status == 400

    def test_significance_metric_needs_exact_mode(self, served_tenant):
        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/rules/top?estimate=true&by=chi_square")
        assert status == 400
        assert "estimate" in body["error"]

    def test_queued_events_served_immediately_with_exact_behind(
            self, served_tenant):
        status, body, _ = served_tenant.request(
            "POST", "/v1/demo/events",
            {"type": "add_annotated_tuples",
             "rows": [[["a", "x"], ["A1"]] for _ in range(4)]})
        assert status == 202

        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/rules/top?n=3&estimate=true")
        assert status == 200
        # The answer came from the still-published revision, with the
        # queue folded in as an exact overlay...
        assert body["revision"] == 1
        assert body["db_size"] == len(ROWS) + 4
        assert body["overlay_rows"] == 4
        # ...and the exact refresh was scheduled behind it.
        assert body["flush_scheduled"] is True

        def flushed():
            _, tenant, _ = served_tenant.request("GET", "/v1/demo")
            return tenant["pending_events"] == 0 and \
                tenant["revision"] == 2
        assert wait_until(flushed), "async exact refresh never landed"
        _, after, _ = served_tenant.request(
            "GET", "/v1/demo/rules/top?n=3&estimate=true")
        assert after["revision"] == 2
        assert after["db_size"] == len(ROWS) + 4
        assert after["flush_scheduled"] is False

    def test_estimate_reads_feed_the_metrics(self, served_tenant):
        served_tenant.request("GET", "/v1/demo/rules/top?estimate=true")
        status, body, _ = served_tenant.request("GET", "/metrics")
        assert status == 200
        reads = body["metrics"]["service_estimate_reads"]
        assert reads["value"] >= 1
        assert body["metrics"]["service_estimate_seconds"]["count"] >= 1


class TestEstimateQuery:
    def test_floors_filter_on_estimated_metrics(self, served_tenant):
        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/query?estimate=true&min_support=0.3"
                   "&order_by=support")
        assert status == 200
        assert body["estimated"] is True and body["order_by"] == "support"
        assert body["count"] == body["total"] == len(body["rules"])
        assert all(rule["support"] >= 0.3 for rule in body["rules"])
        values = [rule["support"] for rule in body["rules"]]
        assert values == sorted(values, reverse=True)

    def test_paging(self, served_tenant):
        _, full, _ = served_tenant.request(
            "GET", "/v1/demo/query?estimate=true&order_by=confidence")
        _, page, _ = served_tenant.request(
            "GET", "/v1/demo/query?estimate=true&order_by=confidence"
                   "&offset=1&limit=2")
        assert page["offset"] == 1 and page["count"] <= 2
        assert [r["rendered"] for r in page["rules"]] == \
            [r["rendered"] for r in full["rules"][1:3]]

    def test_significance_floors_rejected_in_estimate_mode(
            self, served_tenant):
        for param in ("max_p_value=0.5", "min_chi_square=1.0"):
            status, body, _ = served_tenant.request(
                "GET", f"/v1/demo/query?estimate=true&{param}")
            assert status == 400
            assert "exact" in body["error"]

    def test_item_filters_rejected_in_estimate_mode(self, served_tenant):
        for param in ("mentioning=a", "rhs=A1"):
            status, body, _ = served_tenant.request(
                "GET", f"/v1/demo/query?estimate=true&{param}")
            assert status == 400


class TestSignificanceTier:
    def test_top_by_chi_square_carries_the_figures(self, served_tenant):
        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/rules/top?n=5&by=chi_square")
        assert status == 200
        scores = [rule["chi_square"] for rule in body["rules"]]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 <= rule["p_value"] <= 1.0 for rule in body["rules"])

    def test_query_significance_floors(self, served_tenant):
        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/query?max_p_value=0.9&order_by=p_value")
        assert status == 200
        p_values = [rule["p_value"] for rule in body["rules"]]
        assert p_values == sorted(p_values)
        assert all(p <= 0.9 for p in p_values)

        _, unfiltered, _ = served_tenant.request("GET", "/v1/demo/query")
        assert body["total"] <= unfiltered["total"]

    def test_min_chi_square_floor(self, served_tenant):
        _, ordered, _ = served_tenant.request(
            "GET", "/v1/demo/query?order_by=chi_square")
        floor = ordered["rules"][0]["chi_square"]
        status, body, _ = served_tenant.request(
            "GET", f"/v1/demo/query?min_chi_square={floor}")
        assert status == 200
        assert body["total"] >= 1
        assert all(rule["chi_square"] >= floor for rule in body["rules"])

    def test_exact_rules_omit_significance_unless_asked(self, served_tenant):
        _, plain, _ = served_tenant.request(
            "GET", "/v1/demo/rules/top?n=2&by=confidence")
        assert all("chi_square" not in rule for rule in plain["rules"])
        _, sig, _ = served_tenant.request(
            "GET", "/v1/demo/rules/top?n=2&by=p_value")
        assert all("chi_square" in rule and "p_value" in rule
                   for rule in sig["rules"])


class TestTenantConfig:
    def test_sketch_k_round_trips_through_tenant_config(self, served):
        status, body, _ = served.request(
            "POST", "/v1/tenants",
            {"name": "k64", "columns": ["c1", "c2"], "rows": ROWS,
             "config": {"sketch_k": 64}})
        assert status == 201
        assert body["tenant"]["config"]["sketch_k"] == 64
        status, body, _ = served.request(
            "GET", "/v1/k64/rules/top?estimate=true")
        assert status == 200

"""ServerConfig validation and derived knobs."""

import pytest

from repro.errors import ServerError
from repro.server.config import ServerConfig


class TestValidation:
    def test_defaults_are_valid(self):
        config = ServerConfig()
        assert config.port == 8765
        assert config.max_pending_events == 10_000

    def test_bad_port_rejected(self):
        with pytest.raises(ServerError):
            ServerConfig(port=-1)

    def test_bad_queue_bound_rejected(self):
        with pytest.raises(ServerError):
            ServerConfig(max_pending_events=0)

    def test_bad_watermark_rejected(self):
        with pytest.raises(ServerError):
            ServerConfig(flush_watermark=1.5)

    def test_executor_must_outnumber_flush_lanes(self):
        # Otherwise drain/create work could starve behind the flush
        # lanes it is supposed to be independent of.
        with pytest.raises(ServerError, match="exceed"):
            ServerConfig(max_inflight_flushes=4, executor_workers=4)

    def test_bad_retry_window_rejected(self):
        with pytest.raises(ServerError):
            ServerConfig(retry_after_floor=5.0, retry_after_cap=1.0)


class TestDerived:
    def test_flush_trigger_depth(self):
        config = ServerConfig(max_pending_events=100, flush_watermark=0.5)
        assert config.flush_trigger_depth == 50

    def test_trigger_is_at_least_one(self):
        config = ServerConfig(max_pending_events=10,
                              flush_watermark=0.01)
        assert config.flush_trigger_depth == 1

    def test_none_watermark_disables_background_flushing(self):
        assert ServerConfig(flush_watermark=None).flush_trigger_depth \
            is None

    def test_replace(self):
        config = ServerConfig().replace(port=0)
        assert config.port == 0
        assert config.host == ServerConfig().host

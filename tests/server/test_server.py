"""End-to-end serving tests over a real socket.

The server runs in a daemon thread (see ``conftest.ServerThread``) and
the tests speak plain stdlib HTTP to it — the same wire surface the
quickstart example and the CI smoke job use.
"""

import json
import threading
import time

import pytest

from tests.server.conftest import ROWS, make_server

ADD = {"type": "add_annotations", "additions": [[0, "A9"]]}


def batch(n, tid=1):
    return {"events": [{"type": "add_annotations",
                        "additions": [[tid, f"B{i}"]]}
                       for i in range(n)]}


class TestOperational:
    def test_healthz(self, served):
        status, body, _ = served.request("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["tenants"] == 0

    def test_unknown_route_404(self, served):
        status, body, _ = served.request("GET", "/nope")
        assert status == 404
        assert "no route" in body["error"]

    def test_wrong_method_405(self, served):
        status, body, _ = served.request("PUT", "/healthz")
        assert status == 405

    def test_oversized_body_413(self):
        server = make_server(max_request_bytes=1024)
        try:
            status, body, _ = server.request(
                "POST", "/v1/tenants",
                {"name": "big", "rows": [[["x" * 40], ["A"]]] * 50})
            assert status == 413
        finally:
            server.stop()

    def test_malformed_json_400(self, served):
        conn = served.connection()
        try:
            conn.request("POST", "/v1/tenants", body="{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert "not valid JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_keep_alive_serves_multiple_requests(self, served):
        conn = served.connection()
        try:
            for _ in range(3):
                status, body, _ = served.request("GET", "/healthz",
                                                 conn=conn)
                assert status == 200
        finally:
            conn.close()

    def test_metrics_endpoint(self, served_tenant):
        served_tenant.request("GET", "/v1/demo/rules")
        status, body, _ = served_tenant.request("GET", "/metrics")
        assert status == 200
        metrics = body["metrics"]
        assert metrics["service_snapshot_misses"]["value"] >= 1
        assert "http_requests" in metrics
        assert "queue_depth" in metrics
        assert metrics["tenants"]["value"] == 1
        latency = metrics["http_request_seconds"]["series"]
        assert any(key.startswith("route=") for key in latency)
        assert 0.0 <= body["derived"]["snapshot_hit_rate"] <= 1.0


class TestTenantLifecycle:
    def test_create_list_status_drop(self, served):
        status, body, _ = served.request(
            "POST", "/v1/tenants",
            {"name": "demo", "columns": ["c1", "c2"], "rows": ROWS})
        assert status == 201
        assert body["tenant"]["rules"] > 0
        assert body["tenant"]["revision"] == 1

        status, body, _ = served.request("GET", "/v1/tenants")
        assert status == 200
        assert [t["tenant"] for t in body["tenants"]] == ["demo"]

        status, body, _ = served.request("GET", "/v1/demo")
        assert status == 200 and body["db_size"] == 4

        status, body, _ = served.request("DELETE", "/v1/demo")
        assert status == 200
        status, body, _ = served.request("GET", "/v1/demo")
        assert status == 404

    def test_duplicate_create_409(self, served_tenant):
        status, body, _ = served_tenant.request(
            "POST", "/v1/tenants", {"name": "demo", "rows": ROWS})
        assert status == 409
        assert "already exists" in body["error"]

    def test_create_with_config_override(self, served):
        status, body, _ = served.request(
            "POST", "/v1/tenants",
            {"name": "strict", "rows": ROWS,
             "config": {"min_confidence": 0.95}})
        assert status == 201
        assert body["tenant"]["config"]["min_confidence"] == 0.95

    def test_bad_config_field_400(self, served):
        status, body, _ = served.request(
            "POST", "/v1/tenants",
            {"name": "x", "rows": ROWS, "config": {"min_sup": 0.1}})
        assert status == 400
        assert "min_sup" in body["error"]

    def test_reserved_name_400(self, served):
        status, body, _ = served.request(
            "POST", "/v1/tenants", {"name": "tenants", "rows": ROWS})
        assert status == 400

    def test_drop_with_pending_needs_force(self, served_tenant):
        status, body, _ = served_tenant.request(
            "POST", "/v1/demo/events", ADD)
        assert status == 202
        status, body, _ = served_tenant.request("DELETE", "/v1/demo")
        assert status == 409
        assert "queued event" in body["error"]
        assert "force=true" in body["hint"]
        status, body, _ = served_tenant.request(
            "DELETE", "/v1/demo?force=true")
        assert status == 200 and body["forced"] is True


class TestReads:
    def test_rules_listing_paged(self, served_tenant):
        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/rules?limit=2")
        assert status == 200
        assert body["count"] <= 2 and body["total"] >= body["count"]
        assert body["revision"] == 1
        first = body["rules"][0]
        assert {"kind", "lhs", "rhs", "support", "confidence",
                "lift", "rendered"} <= set(first)
        # Second page never repeats the first.
        status, second, _ = served_tenant.request(
            "GET", "/v1/demo/rules?limit=2&offset=2")
        assert [r["rendered"] for r in second["rules"]] != \
            [r["rendered"] for r in body["rules"]]

    def test_rules_top(self, served_tenant):
        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/rules/top?n=3&by=lift")
        assert status == 200 and body["count"] <= 3
        lifts = [rule["lift"] for rule in body["rules"]]
        assert lifts == sorted(lifts, reverse=True)

    def test_rules_for_item(self, served_tenant):
        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/rules/for-item?token=A1")
        assert status == 200 and body["total"] > 0
        for rule in body["rules"]:
            assert "A1" in rule["lhs"] or rule["rhs"] == "A1"
        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/rules/for-item?token=A1&role=rhs")
        assert all(rule["rhs"] == "A1" for rule in body["rules"])

    def test_rules_for_unknown_token_is_empty(self, served_tenant):
        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/rules/for-item?token=never-seen")
        assert status == 200 and body["total"] == 0

    def test_query_with_floors_and_explain(self, served_tenant):
        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/query?min_confidence=0.9"
                   "&order_by=support&explain=true")
        assert status == 200
        assert all(rule["confidence"] >= 0.9 for rule in body["rules"])
        assert "index=" in body["explain"]

    def test_query_bad_metric_400(self, served_tenant):
        status, body, _ = served_tenant.request(
            "GET", "/v1/demo/query?order_by=coverage")
        assert status == 400

    def test_unmined_tenant_reads_409(self, served):
        status, _, _ = served.request(
            "POST", "/v1/tenants",
            {"name": "lazy", "rows": ROWS, "mine": False})
        assert status == 201
        status, body, _ = served.request("GET", "/v1/lazy/rules")
        assert status == 409
        assert "mine" in body["error"]


class TestWrites:
    def test_event_flush_read_cycle(self, served_tenant):
        status, body, _ = served_tenant.request(
            "POST", "/v1/demo/events", ADD)
        assert status == 202
        assert body["queue_depth"] == 1
        # The read path still serves revision 1 until the flush lands.
        _, before, _ = served_tenant.request("GET", "/v1/demo/rules")
        assert before["revision"] == 1

        status, body, _ = served_tenant.request("POST", "/v1/demo/flush")
        assert status == 200
        assert body["events_applied"] == 1
        assert body["revision"] == 2

        _, after, _ = served_tenant.request("GET", "/v1/demo/rules")
        assert after["revision"] == 2

    def test_batch_events(self, served_tenant):
        status, body, _ = served_tenant.request(
            "POST", "/v1/demo/events:batch", batch(5))
        assert status == 202 and body["queued"] == 5
        status, body, _ = served_tenant.request("POST", "/v1/demo/flush")
        assert body["events_applied"] == 5

    def test_bad_event_400(self, served_tenant):
        status, body, _ = served_tenant.request(
            "POST", "/v1/demo/events", {"type": "upsert"})
        assert status == 400
        assert "unknown event type" in body["error"]

    def test_mine_bumps_revision(self, served_tenant):
        status, body, _ = served_tenant.request("POST", "/v1/demo/mine")
        assert status == 200 and body["revision"] == 2

    def test_verify_after_updates(self, served_tenant):
        served_tenant.request("POST", "/v1/demo/events:batch", batch(3))
        served_tenant.request("POST", "/v1/demo/flush")
        status, body, _ = served_tenant.request("GET", "/v1/demo/verify")
        assert status == 200
        assert body["equivalent"] is True


class TestBackpressure:
    def test_queue_saturation_yields_429(self):
        server = make_server(max_pending_events=5)
        try:
            server.request("POST", "/v1/tenants",
                           {"name": "demo", "rows": ROWS})
            status, body, _ = server.request(
                "POST", "/v1/demo/events:batch", batch(5))
            assert status == 202
            status, body, headers = server.request(
                "POST", "/v1/demo/events", ADD)
            assert status == 429
            assert "queue full" in body["error"]
            assert body["queue_depth"] == 5 and body["limit"] == 5
            # The wire header is integer seconds, rounded up from the
            # float hint in the body.
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after"] > 0
            # Rejection is visible in the metrics.
            _, metrics, _ = server.request("GET", "/metrics")
            series = metrics["metrics"]["admission_rejected"]["series"]
            assert series["reason=queue_full,tenant=demo"]["value"] == 1
        finally:
            server.stop()

    def test_retry_after_honored_write_succeeds_after_drain(self):
        """The 429 contract: back off, let the background flush drain
        the queue, and the retried write is admitted."""
        server = make_server(max_pending_events=6, flush_watermark=0.5)
        try:
            server.request("POST", "/v1/tenants",
                           {"name": "demo", "rows": ROWS})
            # Cross the watermark (trigger depth 3) to saturation.
            status, body, _ = server.request(
                "POST", "/v1/demo/events:batch", batch(6))
            assert status == 202 and body["flush_scheduled"]
            deadline = time.monotonic() + 30
            final = None
            while time.monotonic() < deadline:
                status, final, _ = server.request(
                    "POST", "/v1/demo/events", ADD)
                if status == 202:
                    break
                assert status == 429
                time.sleep(min(final["retry_after"], 0.5))
            assert status == 202, f"write never admitted: {final}"
        finally:
            server.stop()

    def test_flush_saturation_yields_429(self):
        server = make_server(max_inflight_flushes=1, executor_workers=2)
        try:
            server.request("POST", "/v1/tenants",
                           {"name": "demo", "rows": ROWS})
            # Hold the only flush lane directly, then ask over HTTP.
            assert server.server.admission.admit_flush("demo")
            try:
                status, body, headers = server.request(
                    "POST", "/v1/demo/flush")
                assert status == 429
                assert "in flight" in body["error"]
                assert int(headers["Retry-After"]) >= 1
            finally:
                server.server.admission.release_flush()
            status, _, _ = server.request("POST", "/v1/demo/flush")
            assert status == 200
        finally:
            server.stop()


class TestConsistency:
    def test_no_torn_revisions_under_racing_flushes(self):
        """Reads racing a stream of write+flush cycles must always see
        an internally consistent (revision, db_size) pair — one that
        some published snapshot actually had."""
        server = make_server()
        try:
            server.request("POST", "/v1/tenants",
                           {"name": "demo", "columns": ["c1", "c2"],
                            "rows": ROWS})
            valid: dict[int, int] = {1: 4}  # revision -> db_size
            stop = threading.Event()
            torn: list = []

            def reader():
                conn = server.connection()
                try:
                    while not stop.is_set():
                        _, body, _ = server.request(
                            "GET", "/v1/demo/rules?limit=1", conn=conn)
                        pair = (body["revision"], body["db_size"])
                        if valid.get(pair[0]) != pair[1]:
                            torn.append(pair)
                            return
                finally:
                    conn.close()

            def writer():
                for round_number in range(8):
                    status, _, _ = server.request(
                        "POST", "/v1/demo/events",
                        {"type": "add_annotated_tuples",
                         "rows": [[["w", str(round_number)], ["A1"]]]})
                    assert status == 202
                    status, flushed, _ = server.request(
                        "POST", "/v1/demo/flush")
                    assert status == 200
                    assert valid[flushed["revision"]] == \
                        flushed["db_size"]

            # Every state the writer will create, known up front (so
            # readers can check pairs they observe *before* the flush
            # response returns): round k adds one tuple, so revision
            # 1+k pairs with db_size 4+k — any other combination is a
            # torn read.
            for k in range(1, 9):
                valid[1 + k] = 4 + k
            readers = [threading.Thread(target=reader) for _ in range(4)]
            for thread in readers:
                thread.start()
            writer()
            stop.set()
            for thread in readers:
                thread.join(timeout=30)
            assert not torn, f"torn read observed: {torn}"
        finally:
            server.stop()

    def test_graceful_drain_flushes_everything(self):
        """Queued-but-unflushed (202-acknowledged) events survive a
        graceful stop: the drain flushes every tenant, then closes the
        tenants' shard pools — no worker process or shared-memory
        segment outlives the server."""
        from repro.mining.pages import live_segments
        from repro.shard.pool import live_pool_count

        server = make_server()
        server.request("POST", "/v1/tenants",
                       {"name": "alpha", "columns": ["c1", "c2"],
                        "rows": ROWS})
        server.request("POST", "/v1/tenants",
                       {"name": "beta", "columns": ["c1", "c2"],
                        "rows": ROWS})
        # A process-sharded tenant keeps a persistent worker pool —
        # the drain must reap it along with the flushes.
        status, _, _ = server.request(
            "POST", "/v1/tenants",
            {"name": "gamma", "columns": ["c1", "c2"], "rows": ROWS,
             "config": {"shards": 2, "shard_workers": 2,
                        "shard_executor": "process"}})
        assert status == 201
        for name in ("alpha", "beta", "gamma"):
            status, _, _ = server.request(
                f"POST", f"/v1/{name}/events:batch", batch(4))
            assert status == 202
        service = server.server.service
        assert service.pending("alpha") == 4
        server.stop()  # graceful drain
        for name in ("alpha", "beta", "gamma"):
            assert service.pending(name) == 0
            snapshot = service.snapshot(name)
            assert snapshot.revision == 2  # the drain flush landed
            assert service.verify(name).equivalent
        assert live_pool_count() == 0, "drain leaked pool workers"
        assert live_segments() == (), "drain leaked segments"

    def test_draining_server_rejects_writes_with_503(self):
        server = make_server()
        try:
            server.request("POST", "/v1/tenants",
                           {"name": "demo", "rows": ROWS})
            server.server._draining = True
            status, body, _ = server.request(
                "POST", "/v1/demo/events", ADD)
            assert status == 503
            assert "draining" in body["error"]
            # Reads still work while draining.
            status, _, _ = server.request("GET", "/v1/demo/rules")
            assert status == 200
        finally:
            server.server._draining = False
            server.stop()

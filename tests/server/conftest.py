"""Shared serving-tier fixtures: a real server on a real socket.

CI has no asyncio pytest plugin, so end-to-end tests run the server in
a daemon thread (its own event loop) and drive it with blocking
``http.client`` calls from the test thread — which doubles as proof
that the wire format interoperates with stdlib clients.
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.core.config import EngineConfig
from repro.server import CorrelationServer, ServerConfig

ENGINE = EngineConfig(min_support=0.25, min_confidence=0.6)

#: Four-row corpus shared by most tests (same shape as the app-layer
#: reference rows: two columns, annotation tokens A/B/...).
ROWS = [
    [["a", "x"], ["A1"]],
    [["a", "y"], ["A1"]],
    [["b", "x"], ["A2"]],
    [["a", "x"], ["A1", "A2"]],
]


class ServerThread:
    """A live CorrelationServer on an ephemeral port, in a thread."""

    def __init__(self, config: ServerConfig) -> None:
        self.server = CorrelationServer(config)
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        await self.server.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.server.shutdown()

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("server thread failed to start")
        return self

    def stop(self) -> None:
        """Graceful drain + join (idempotent)."""
        if self._thread.is_alive():
            assert self._loop is not None and self._stop is not None
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)
        assert not self._thread.is_alive(), "server thread did not drain"

    @property
    def port(self) -> int:
        return self.server.port

    def request(self, method: str, path: str, body=None, *,
                conn: http.client.HTTPConnection | None = None):
        """One HTTP call; returns ``(status, parsed-json, headers)``."""
        owned = conn is None
        if conn is None:
            conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                              timeout=30)
        try:
            payload = None if body is None else json.dumps(body)
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            data = response.read()
            return (response.status,
                    json.loads(data) if data else None,
                    dict(response.getheaders()))
        finally:
            if owned:
                conn.close()

    def connection(self) -> http.client.HTTPConnection:
        """A keep-alive connection the caller owns."""
        return http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=30)


def make_server(**overrides) -> ServerThread:
    """A started server; background flushing off unless asked for."""
    settings = dict(host="127.0.0.1", port=0, default_engine=ENGINE,
                    flush_watermark=None, drain_timeout=30.0)
    settings.update(overrides)
    return ServerThread(ServerConfig(**settings)).start()


@pytest.fixture
def served():
    server = make_server()
    try:
        yield server
    finally:
        server.stop()


@pytest.fixture
def served_tenant(served):
    """A server with tenant ``demo`` created and mined over ROWS."""
    status, body, _ = served.request(
        "POST", "/v1/tenants",
        {"name": "demo", "columns": ["c1", "c2"], "rows": ROWS})
    assert status == 201, body
    return served

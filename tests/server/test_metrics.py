"""Metric primitives: counters, gauges, histograms, the registry."""

import threading

import pytest

from repro.errors import ServerError
from repro.server.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceInstrumentation,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ServerError, match=">= 0"):
            Counter().inc(-1)

    def test_render(self):
        counter = Counter()
        counter.inc(3)
        assert counter.render() == {"type": "counter", "value": 3}

    def test_thread_safety(self):
        counter = Counter()
        threads = [threading.Thread(
            target=lambda: [counter.inc() for _ in range(1000)])
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge()
        gauge.set(4)
        gauge.add(-1.5)
        assert gauge.value == 2.5
        assert gauge.render() == {"type": "gauge", "value": 2.5}


class TestHistogram:
    def test_count_sum_mean(self):
        histogram = Histogram()
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.006)
        assert histogram.mean == pytest.approx(0.002)

    def test_quantiles_bracket_the_data(self):
        histogram = Histogram(buckets=(0.01, 0.1, 1.0))
        for _ in range(99):
            histogram.observe(0.005)
        histogram.observe(0.5)
        p50 = histogram.quantile(0.50)
        assert 0.0 < p50 <= 0.01
        assert histogram.quantile(0.99) <= 1.0
        # The tail observation dominates p100.
        assert histogram.quantile(1.0) >= 0.1

    def test_inf_tail_interpolates_to_observed_max(self):
        histogram = Histogram(buckets=(0.01,))
        histogram.observe(5.0)  # beyond every bound → +inf bucket
        assert histogram.quantile(0.99) <= 5.0
        assert histogram.render()["max"] == 5.0

    def test_empty_quantile_is_zero(self):
        assert Histogram().quantile(0.99) == 0.0

    def test_bad_quantile_rejected(self):
        with pytest.raises(ServerError, match=r"\[0, 1\]"):
            Histogram().quantile(1.5)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ServerError, match="positive"):
            Histogram(buckets=(0.0, 1.0))
        with pytest.raises(ServerError, match="distinct"):
            Histogram(buckets=(1.0, 1.0))

    def test_render_shape(self):
        histogram = Histogram(buckets=(0.01, 1.0))
        histogram.observe(0.005)
        rendered = histogram.render()
        assert rendered["type"] == "histogram"
        assert rendered["count"] == 1
        assert set(rendered["buckets"]) == {"0.01", "1.0", "+inf"}
        assert rendered["buckets"]["0.01"] == 1


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("hits") is registry.counter("hits")

    def test_labels_fan_out_series(self):
        registry = MetricsRegistry()
        a = registry.counter("rejections", tenant="a")
        b = registry.counter("rejections", tenant="b")
        assert a is not b
        # Label order is irrelevant to identity.
        assert registry.counter("x", p="1", q="2") is \
            registry.counter("x", q="2", p="1")

    def test_type_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("depth")
        with pytest.raises(ServerError, match="already registered"):
            registry.gauge("depth")

    def test_empty_name_rejected(self):
        with pytest.raises(ServerError, match="non-empty"):
            MetricsRegistry().counter("")

    def test_render_groups_labelled_series(self):
        registry = MetricsRegistry()
        registry.counter("flat").inc()
        registry.counter("fanned", tenant="a").inc(2)
        registry.counter("fanned", tenant="b").inc(3)
        rendered = registry.render()
        assert rendered["flat"]["value"] == 1
        assert rendered["fanned"]["series"]["tenant=a"]["value"] == 2
        assert rendered["fanned"]["series"]["tenant=b"]["value"] == 3


class TestServiceInstrumentation:
    def test_bundle_registers_into_registry(self):
        registry = MetricsRegistry()
        bundle = ServiceInstrumentation(registry)
        bundle.flush_batches.inc()
        assert registry.render()["service_flush_batches"]["value"] == 1

    def test_snapshot_hit_rate(self):
        bundle = ServiceInstrumentation()
        assert bundle.snapshot_hit_rate() == 0.0
        bundle.snapshot_hits.inc(3)
        bundle.snapshot_misses.inc(1)
        assert bundle.snapshot_hit_rate() == pytest.approx(0.75)

    def test_observe_phases_fans_out_per_phase(self):
        from repro.core.maintenance import PhaseTimings

        registry = MetricsRegistry()
        bundle = ServiceInstrumentation(registry, prefix="svc")
        phases = PhaseTimings()
        phases.add("partition", 0.002)
        phases.add("mine", 0.010)
        phases.add("mine", 0.004)  # accumulates within one report
        bundle.observe_phases(phases)
        series = registry.render()["svc_phase_seconds"]["series"]
        assert set(series) == {"phase=partition", "phase=mine"}
        assert series["phase=partition"]["count"] == 1
        assert series["phase=mine"]["sum"] == pytest.approx(0.014)

    def test_observe_phases_empty_is_noop(self):
        from repro.core.maintenance import PhaseTimings

        registry = MetricsRegistry()
        ServiceInstrumentation(registry).observe_phases(PhaseTimings())
        assert "service_phase_seconds" not in registry.render()


class TestHistogramDegenerateCases:
    """Zero- and one-observation quantiles must be deterministic: a
    single point is its own p50 *and* p99 — interpolating inside the
    winning bucket would make the two disagree about a distribution
    with one point in it."""

    def test_single_observation_all_quantiles_agree(self):
        histogram = Histogram(buckets=(0.01, 0.1, 1.0))
        histogram.observe(0.04)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 0.04

    def test_constant_observations_all_quantiles_agree(self):
        histogram = Histogram(buckets=(0.01, 0.1, 1.0))
        for _ in range(25):
            histogram.observe(0.04)
        assert histogram.quantile(0.5) == histogram.quantile(0.99) == 0.04

    def test_single_observation_render_has_no_p50_p99_drift(self):
        histogram = Histogram()
        histogram.observe(0.003)
        rendered = histogram.render()
        assert rendered["p50"] == rendered["p99"] == 0.003
        assert rendered["min"] == rendered["max"] == 0.003

    def test_two_distinct_observations_still_interpolate(self):
        histogram = Histogram(buckets=(0.01, 1.0))
        histogram.observe(0.005)
        histogram.observe(0.5)
        assert histogram.quantile(0.5) <= 0.01
        assert histogram.quantile(0.99) > 0.01

    def test_empty_histogram_unchanged(self):
        assert Histogram().quantile(0.5) == 0.0


class TestEstimateInstruments:
    def test_bundle_exposes_the_estimate_tier(self):
        bundle = ServiceInstrumentation()
        bundle.estimate_reads.inc()
        bundle.estimate_seconds.observe(0.002)
        rendered = bundle.registry.render()
        assert rendered["service_estimate_reads"]["value"] == 1
        assert rendered["service_estimate_seconds"]["count"] == 1

"""Unit tests for shared helpers (thresholds arithmetic, timers)."""

import pytest

from repro._util import (
    Stopwatch,
    meets_fraction,
    min_count_for,
    sorted_tuple,
    timed,
    validate_fraction,
)
from repro.errors import InvalidThresholdError


class TestValidateFraction:
    def test_accepts_valid(self):
        assert validate_fraction(0.5, "x") == 0.5
        assert validate_fraction(1, "x") == 1.0

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.01, float("nan"), True,
                                     "0.5", None])
    def test_rejects_invalid(self, bad):
        with pytest.raises(InvalidThresholdError):
            validate_fraction(bad, "x")

    def test_error_names_the_parameter(self):
        with pytest.raises(InvalidThresholdError, match="min_support"):
            validate_fraction(2.0, "min_support")


class TestMinCountFor:
    def test_basic(self):
        assert min_count_for(0.4, 10) == 4
        assert min_count_for(0.4, 11) == 5

    def test_exact_products_not_rounded_up(self):
        # 0.3 * 10 = 3.0 exactly (within epsilon): count >= 3, not 4.
        assert min_count_for(0.3, 10) == 3
        assert min_count_for(0.25, 8) == 2

    def test_floor_of_one(self):
        assert min_count_for(0.001, 10) == 1
        assert min_count_for(0.5, 0) == 1

    def test_agreement_with_meets_fraction(self):
        # The two helpers must define the same boundary everywhere.
        for total in range(1, 40):
            for percent in range(1, 100):
                fraction = percent / 100
                threshold = min_count_for(fraction, total)
                assert meets_fraction(threshold, total, fraction)
                assert not meets_fraction(threshold - 1, total, fraction)


class TestMeetsFraction:
    def test_boundary(self):
        assert meets_fraction(4, 10, 0.4)
        assert not meets_fraction(3, 10, 0.4)

    def test_zero_denominator(self):
        assert not meets_fraction(5, 0, 0.1)


class TestSortedTuple:
    def test_sorts_and_dedupes(self):
        assert sorted_tuple([3, 1, 1, 2]) == (1, 2, 3)
        assert sorted_tuple([]) == ()


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        watch.start()
        first = watch.stop()
        watch.start()
        second = watch.stop()
        assert second >= first >= 0.0

    def test_stop_without_start_is_safe(self):
        assert Stopwatch().stop() == 0.0

    def test_timed_context(self):
        with timed() as watch:
            sum(range(1000))
        assert watch.elapsed > 0.0

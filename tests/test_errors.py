"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            attribute = getattr(errors, name)
            if isinstance(attribute, type) \
                    and issubclass(attribute, Exception) \
                    and attribute is not errors.ReproError:
                assert issubclass(attribute, errors.ReproError), name

    def test_single_catch_point(self):
        with pytest.raises(errors.ReproError):
            raise errors.MiningError("boom")


class TestFormatError:
    def test_location_rendered(self):
        error = errors.FormatError("bad token", line_number=7,
                                   line="x y z")
        assert "line 7" in str(error)
        assert "'x y z'" in str(error)
        assert error.line_number == 7
        assert error.line == "x y z"

    def test_location_optional(self):
        error = errors.FormatError("bad token")
        assert str(error) == "bad token"
        assert error.line_number is None

"""Shared fixtures and helpers for the test suite.

Randomness discipline: every randomized test draws its generator (or
integer stream seed) from the session-wide :class:`SeedRouter` exposed
by the ``seeds`` fixture, never from an ad-hoc ``random.Random(...)``.
With the default base seed 0 the router reproduces the suite's
historical fixed streams exactly; ``pytest --seed N`` (or the
``REPRO_TEST_SEED`` environment variable) deterministically re-derives
every stream from ``N``, so a failure seen on any base seed replays
exactly by re-running with that seed — the header line names it.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.relation.relation import AnnotatedRelation
from repro.core.engine import CorrelationEngine, engine
from repro.baselines.remine import remine


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--seed", action="store", type=int, default=None,
        help="base seed mixed into every routed test RNG (default: the "
             "REPRO_TEST_SEED env var, else 0 — the suite's historical "
             "streams)")


def _base_seed(config: pytest.Config) -> int:
    option = config.getoption("--seed", default=None)
    if option is not None:
        return option
    return int(os.environ.get("REPRO_TEST_SEED", "0"))


def pytest_report_header(config: pytest.Config) -> str:
    return (f"repro randomized-test base seed: {_base_seed(config)} "
            f"(replay with --seed / REPRO_TEST_SEED)")


class SeedRouter:
    """The one source of test randomness.

    Each call site keeps its historical salt; the router mixes it with
    the session base seed.  Base seed 0 maps every salt to itself, so
    the default run is byte-for-byte the pre-router test suite.
    """

    def __init__(self, base: int) -> None:
        self.base = base

    def seed(self, salt: int) -> int:
        """A derived integer seed (for StreamConfig and friends)."""
        if self.base == 0:
            return salt
        return (self.base * 1_000_003 + salt) & 0x7FFF_FFFF_FFFF_FFFF

    def rng(self, salt: int) -> random.Random:
        """A derived generator for direct in-test drawing."""
        return random.Random(self.seed(salt))


@pytest.fixture(scope="session")
def seeds(request: pytest.FixtureRequest) -> SeedRouter:
    return SeedRouter(_base_seed(request.config))


@pytest.fixture(autouse=True)
def _reap_shard_pools():
    """Persistent shard pools outlive mine()/apply_batch by design;
    tests that don't close their engines must not leak worker
    processes into the rest of the session."""
    yield
    from repro.shard.pool import shutdown_live_pools

    shutdown_live_pools()

#: A hand-checkable reference dataset used across many tests.
#: Value tokens are opaque strings (paper Figure 4 style); annotations
#: A and B correlate with value "1" / value "3" respectively.
REFERENCE_ROWS = [
    (("1", "2"), ("A",)),
    (("1", "3"), ("A", "B")),
    (("1", "2"), ("A",)),
    (("4", "2"), ()),
    (("1", "3"), ("A", "B")),
    (("4", "3"), ("B",)),
    (("1", "5"), ("A",)),
    (("4", "5"), ()),
]


def make_relation(rows=None) -> AnnotatedRelation:
    """Build a relation from ``(values, annotations)`` pairs."""
    relation = AnnotatedRelation()
    for values, annotations in (rows if rows is not None else REFERENCE_ROWS):
        relation.insert(values, annotations)
    return relation


def assert_equivalent_to_remine(manager: CorrelationEngine) -> None:
    """The paper's verification: incremental rules == re-mined rules."""
    baseline = remine(
        manager.relation,
        min_support=manager.thresholds.min_support,
        min_confidence=manager.thresholds.min_confidence,
        margin=manager.thresholds.margin,
        generalizer=manager.generalizer,
        max_length=manager.max_length,
        backend=manager.config.backend,
    )
    incremental = manager.signature()
    fresh = baseline.signature()
    assert incremental == fresh, (
        f"only incremental: {sorted(incremental - fresh)[:3]} | "
        f"only remine: {sorted(fresh - incremental)[:3]}")


@pytest.fixture
def reference_relation() -> AnnotatedRelation:
    return make_relation()


@pytest.fixture
def mined_manager(reference_relation) -> CorrelationEngine:
    manager = engine(
        reference_relation, min_support=0.25, min_confidence=0.6,
        validate=True)
    manager.mine()
    return manager

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.relation.relation import AnnotatedRelation
from repro.core.engine import CorrelationEngine, engine
from repro.baselines.remine import remine

#: A hand-checkable reference dataset used across many tests.
#: Value tokens are opaque strings (paper Figure 4 style); annotations
#: A and B correlate with value "1" / value "3" respectively.
REFERENCE_ROWS = [
    (("1", "2"), ("A",)),
    (("1", "3"), ("A", "B")),
    (("1", "2"), ("A",)),
    (("4", "2"), ()),
    (("1", "3"), ("A", "B")),
    (("4", "3"), ("B",)),
    (("1", "5"), ("A",)),
    (("4", "5"), ()),
]


def make_relation(rows=None) -> AnnotatedRelation:
    """Build a relation from ``(values, annotations)`` pairs."""
    relation = AnnotatedRelation()
    for values, annotations in (rows if rows is not None else REFERENCE_ROWS):
        relation.insert(values, annotations)
    return relation


def assert_equivalent_to_remine(manager: CorrelationEngine) -> None:
    """The paper's verification: incremental rules == re-mined rules."""
    baseline = remine(
        manager.relation,
        min_support=manager.thresholds.min_support,
        min_confidence=manager.thresholds.min_confidence,
        margin=manager.thresholds.margin,
        generalizer=manager.generalizer,
        max_length=manager.max_length,
        backend=manager.config.backend,
    )
    incremental = manager.signature()
    fresh = baseline.signature()
    assert incremental == fresh, (
        f"only incremental: {sorted(incremental - fresh)[:3]} | "
        f"only remine: {sorted(fresh - incremental)[:3]}")


@pytest.fixture
def reference_relation() -> AnnotatedRelation:
    return make_relation()


@pytest.fixture
def mined_manager(reference_relation) -> CorrelationEngine:
    manager = engine(
        reference_relation, min_support=0.25, min_confidence=0.6,
        validate=True)
    manager.mine()
    return manager

"""Unit tests for schemas and data tokens."""

import pytest

from repro.errors import SchemaError
from repro.relation.schema import Attribute, Schema, opaque_token


class TestAttribute:
    def test_validation(self):
        with pytest.raises(SchemaError):
            Attribute("", 0)
        with pytest.raises(SchemaError):
            Attribute("x", -1)


class TestSchema:
    def test_basic(self):
        schema = Schema(["gene", "expression"])
        assert schema.arity == 2
        assert schema.attribute("gene").position == 0
        assert len(schema) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).attribute("b")

    def test_positional_factory(self):
        schema = Schema.positional(3)
        assert [attribute.name for attribute in schema] \
            == ["attr0", "attr1", "attr2"]
        with pytest.raises(SchemaError):
            Schema.positional(0)

    def test_validate_row(self):
        schema = Schema(["a", "b"])
        assert schema.validate_row([1, "x"]) == ("1", "x")
        with pytest.raises(SchemaError):
            schema.validate_row(["only-one"])

    def test_data_token_qualifies_column(self):
        schema = Schema(["gene", "tissue"])
        assert schema.data_token(0, "BRCA1") == "gene=BRCA1"
        assert schema.data_token(1, "BRCA1") == "tissue=BRCA1"
        with pytest.raises(SchemaError):
            schema.data_token(2, "x")

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a"]) != Schema(["b"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))

    def test_opaque_token(self):
        assert opaque_token(42) == "42"

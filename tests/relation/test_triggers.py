"""Unit tests for the trigger registry and its reentrancy guard."""

import pytest

from repro.relation.relation import AnnotatedRelation
from repro.relation.triggers import TriggerReentrancyError, TriggerRegistry


class TestRegistry:
    def test_fire_insert_passes_arguments(self):
        registry = TriggerRegistry()
        seen = []
        registry.on_insert.append(lambda *args: seen.append(args))
        registry.fire_insert(3, ("a",), frozenset({"A"}))
        assert seen == [(3, ("a",), frozenset({"A"}))]

    def test_multiple_callbacks_in_order(self):
        registry = TriggerRegistry()
        order = []
        registry.on_delete.append(lambda tid: order.append(("first", tid)))
        registry.on_delete.append(lambda tid: order.append(("second", tid)))
        registry.fire_delete(1)
        assert order == [("first", 1), ("second", 1)]

    def test_guard_outside_firing_is_noop(self):
        TriggerRegistry().guard()  # must not raise

    def test_guard_inside_firing_raises(self):
        registry = TriggerRegistry()

        def misbehaving(tid):
            registry.guard()

        registry.on_delete.append(misbehaving)
        with pytest.raises(TriggerReentrancyError):
            registry.fire_delete(0)

    def test_firing_flag_reset_after_error(self):
        registry = TriggerRegistry()
        registry.on_delete.append(lambda tid: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            registry.fire_delete(0)
        registry.guard()  # flag must be reset by the finally block


class TestRelationIntegration:
    def test_trigger_cannot_mutate_relation(self):
        relation = AnnotatedRelation()

        def evil_trigger(tid, values, annotations):
            relation.insert(("sneaky",))

        relation.triggers.on_insert.append(evil_trigger)
        with pytest.raises(TriggerReentrancyError):
            relation.insert(("1",))

    def test_read_only_trigger_is_fine(self):
        relation = AnnotatedRelation()
        sizes = []
        relation.triggers.on_insert.append(
            lambda tid, values, annotations: sizes.append(len(relation)))
        relation.insert(("1",))
        relation.insert(("2",))
        assert sizes == [1, 2]

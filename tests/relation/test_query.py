"""Unit tests for the annotation-propagating query operators."""

import pytest

from repro.errors import SchemaError
from repro.relation.query import join, project, select, union
from repro.relation.relation import AnnotatedRelation
from repro.relation.schema import Schema
from repro.relation.tuples import AnnotationAnchor


@pytest.fixture
def genes():
    relation = AnnotatedRelation(Schema(["gene", "tissue"]),
                                 name="genes")
    t0 = relation.insert(("BRCA1", "breast"), ("Annot_flag",))
    relation.annotate(t0, "Annot_cell", AnnotationAnchor.cell(1))
    relation.insert(("TP53", "lung"), ("Annot_ref",))
    relation.insert(("BRCA1", "lung"))
    relation.set_labels(0, {"QualityIssue"})
    return relation


class TestSelect:
    def test_keeps_matching_tuples_with_annotations(self, genes):
        result = select(genes, lambda row: row[0] == "BRCA1")
        assert len(result) == 2
        assert result.relation.tuple(0).annotation_ids \
            == {"Annot_flag", "Annot_cell"}
        assert result.relation.tuple(0).labels == {"QualityIssue"}

    def test_provenance(self, genes):
        result = select(genes, lambda row: row[1] == "lung")
        assert result.provenance == ((1,), (2,))

    def test_does_not_mutate_input(self, genes):
        version = genes.version
        select(genes, lambda row: True)
        assert genes.version == version

    def test_empty_result(self, genes):
        result = select(genes, lambda row: False)
        assert len(result) == 0
        assert result.provenance == ()


class TestProject:
    def test_row_annotations_survive(self, genes):
        result = project(genes, [0])
        assert "Annot_flag" in result.relation.tuple(0).annotation_ids

    def test_cell_annotations_follow_their_column(self, genes):
        kept = project(genes, [1])  # the annotated cell's column
        assert "Annot_cell" in kept.relation.tuple(0).annotation_ids
        anchor = kept.relation.tuple(0).annotations["Annot_cell"]
        assert anchor.column == 0  # re-anchored to the new position
        dropped = project(genes, [0])  # cell's column projected away
        assert "Annot_cell" not in dropped.relation.tuple(0).annotation_ids

    def test_schema_renamed(self, genes):
        result = project(genes, [1])
        assert result.relation.schema.attributes[0].name == "tissue"

    def test_distinct_merges_annotations(self, genes):
        result = project(genes, [0], distinct=True)
        assert len(result) == 2  # BRCA1, TP53
        brca_tid = next(row.tid for row in result.relation
                        if row.values == ("BRCA1",))
        # Both BRCA1 tuples merged; provenance records both sources.
        assert set(result.provenance[brca_tid]) == {0, 2}

    def test_bad_column_rejected(self, genes):
        with pytest.raises(SchemaError):
            project(genes, [7])
        with pytest.raises(SchemaError):
            project(genes, [])


class TestJoin:
    def test_equi_join_unions_annotations(self, genes):
        experiments = AnnotatedRelation(Schema(["gene", "result"]),
                                        name="experiments")
        experiments.insert(("BRCA1", "positive"), ("Annot_exp",))
        result = join(genes, experiments, on=(0, 0))
        assert len(result) == 2  # two BRCA1 gene tuples x one experiment
        for row in result.relation:
            assert "Annot_exp" in row.annotation_ids
        flagged = result.relation.tuple(0)
        assert "Annot_flag" in flagged.annotation_ids

    def test_right_cell_anchor_shifted(self, genes):
        experiments = AnnotatedRelation(Schema(["gene", "result"]))
        tid = experiments.insert(("BRCA1", "positive"))
        experiments.annotate(tid, "Annot_cell_r", AnnotationAnchor.cell(1))
        result = join(genes, experiments, on=(0, 0))
        anchor = result.relation.tuple(0).annotations["Annot_cell_r"]
        assert anchor.column == 3  # 1 + left arity (2)

    def test_join_schema_dedupes_names(self, genes):
        experiments = AnnotatedRelation(Schema(["gene", "tissue"]))
        experiments.insert(("BRCA1", "breast"))
        result = join(genes, experiments, on=(0, 0))
        names = [attribute.name
                 for attribute in result.relation.schema.attributes]
        assert len(set(names)) == 4

    def test_provenance_pairs(self, genes):
        experiments = AnnotatedRelation(Schema(["gene", "result"]))
        experiments.insert(("TP53", "negative"))
        result = join(genes, experiments, on=(0, 0))
        assert result.provenance == ((1, 0),)


class TestUnion:
    def test_distinct_merges_duplicate_rows(self, genes):
        other = AnnotatedRelation(Schema(["gene", "tissue"]))
        other.insert(("BRCA1", "breast"), ("Annot_other",))
        result = union(genes, other)
        assert len(result) == 3  # BRCA1/breast merged
        merged = next(row for row in result.relation
                      if row.values == ("BRCA1", "breast"))
        assert {"Annot_flag", "Annot_other"} <= merged.annotation_ids

    def test_bag_union_keeps_duplicates(self, genes):
        other = AnnotatedRelation(Schema(["gene", "tissue"]))
        other.insert(("BRCA1", "breast"))
        result = union(genes, other, distinct=False)
        assert len(result) == 4

    def test_mismatched_schemas_rejected(self, genes):
        other = AnnotatedRelation(Schema(["x"]))
        other.insert(("1",))
        with pytest.raises(SchemaError):
            union(genes, other)


class TestComposition:
    def test_query_output_is_minable(self, genes):
        """Query results are ordinary annotated relations — they feed
        straight into the rule manager (annotations survived the query,
        so correlations can be mined on views)."""
        from repro.core.manager import AnnotationRuleManager

        view = select(genes, lambda row: True).relation
        manager = AnnotationRuleManager(view, min_support=0.1,
                                        min_confidence=0.5)
        manager.mine()
        assert manager.verify_against_remine().equivalent

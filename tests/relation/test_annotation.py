"""Unit tests for annotation records and the registry."""

import pytest

from repro.errors import DuplicateAnnotationError, UnknownAnnotationError
from repro.relation.annotation import (
    Annotation,
    AnnotationRegistry,
    registry_stats,
)


class TestAnnotation:
    def test_defaults(self):
        annotation = Annotation("Annot_1")
        assert annotation.text == ""
        assert annotation.category == ""

    def test_empty_id_rejected(self):
        with pytest.raises(UnknownAnnotationError):
            Annotation("")

    def test_non_string_id_rejected(self):
        with pytest.raises(UnknownAnnotationError):
            Annotation(17)

    def test_with_text(self):
        enriched = Annotation("Annot_1", category="flag").with_text("bad")
        assert enriched.text == "bad"
        assert enriched.category == "flag"


class TestRegistry:
    def test_register_and_get(self):
        registry = AnnotationRegistry()
        annotation = Annotation("Annot_1", text="wrong value")
        registry.register(annotation)
        assert registry.get("Annot_1") is annotation
        assert "Annot_1" in registry
        assert len(registry) == 1

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownAnnotationError):
            AnnotationRegistry().get("Annot_404")

    def test_same_content_is_idempotent(self):
        registry = AnnotationRegistry()
        registry.register(Annotation("Annot_1", text="x"))
        registry.register(Annotation("Annot_1", text="x"))
        assert len(registry) == 1

    def test_bare_id_then_enrichment(self):
        registry = AnnotationRegistry()
        registry.ensure("Annot_1")
        enriched = Annotation("Annot_1", text="now with text")
        registry.register(enriched)
        assert registry.get("Annot_1").text == "now with text"

    def test_enriched_then_bare_keeps_enrichment(self):
        registry = AnnotationRegistry()
        registry.register(Annotation("Annot_1", text="content"))
        registry.register(Annotation("Annot_1"))
        assert registry.get("Annot_1").text == "content"

    def test_conflicting_content_rejected(self):
        registry = AnnotationRegistry()
        registry.register(Annotation("Annot_1", text="one"))
        with pytest.raises(DuplicateAnnotationError):
            registry.register(Annotation("Annot_1", text="two"))

    def test_ensure_is_idempotent(self):
        registry = AnnotationRegistry()
        first = registry.ensure("Annot_2")
        second = registry.ensure("Annot_2")
        assert first is second

    def test_iteration(self):
        registry = AnnotationRegistry()
        registry.ensure("Annot_1")
        registry.ensure("Annot_2")
        assert {annotation.annotation_id for annotation in registry} \
            == {"Annot_1", "Annot_2"}


class TestStats:
    def test_stats(self):
        registry = AnnotationRegistry()
        registry.register(Annotation("Annot_1", text="x", category="flag"))
        registry.register(Annotation("Annot_2", category="flag"))
        registry.ensure("Annot_3")
        stats = registry_stats(registry)
        assert stats.total == 3
        assert stats.with_text == 1
        assert stats.categories == ("flag",)

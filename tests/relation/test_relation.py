"""Unit tests for the annotated relation storage engine."""

import pytest

from repro.errors import SchemaError, UnknownTupleError
from repro.relation.annotation import Annotation
from repro.relation.relation import AnnotatedRelation
from repro.relation.schema import Schema
from repro.relation.tuples import AnnotationAnchor


class TestInsert:
    def test_insert_returns_sequential_tids(self):
        relation = AnnotatedRelation()
        assert relation.insert(("1", "2")) == 0
        assert relation.insert(("3",), ("A",)) == 1
        assert len(relation) == 2

    def test_insert_registers_annotations(self):
        relation = AnnotatedRelation()
        relation.insert(("1",), ("A", "B"))
        assert "A" in relation.registry
        assert "B" in relation.registry

    def test_schema_validation(self):
        relation = AnnotatedRelation(Schema(["a", "b"]))
        relation.insert(("1", "2"))
        with pytest.raises(SchemaError):
            relation.insert(("1",))

    def test_empty_row_rejected_without_schema(self):
        with pytest.raises(SchemaError):
            AnnotatedRelation().insert(())

    def test_insert_many(self):
        relation = AnnotatedRelation()
        tids = relation.insert_many([(("1",), ("A",)), (("2",), ())])
        assert tids == [0, 1]

    def test_version_bumps_on_mutation(self):
        relation = AnnotatedRelation()
        v0 = relation.version
        relation.insert(("1",))
        assert relation.version > v0


class TestAnnotate:
    def test_annotate_once(self):
        relation = AnnotatedRelation()
        tid = relation.insert(("1",))
        assert relation.annotate(tid, "A")
        assert not relation.annotate(tid, "A")
        assert relation.tuple(tid).annotation_ids == {"A"}

    def test_annotate_with_rich_annotation(self):
        relation = AnnotatedRelation()
        tid = relation.insert(("1",))
        relation.annotate(tid, Annotation("A", text="suspicious"))
        assert relation.registry.get("A").text == "suspicious"

    def test_annotate_unknown_tuple(self):
        with pytest.raises(UnknownTupleError):
            AnnotatedRelation().annotate(0, "A")

    def test_cell_anchor_bounds_checked(self):
        relation = AnnotatedRelation()
        tid = relation.insert(("1", "2"))
        relation.annotate(tid, "A", AnnotationAnchor.cell(1))
        with pytest.raises(SchemaError):
            relation.annotate(tid, "B", AnnotationAnchor.cell(5))

    def test_column_anchor_rejected_on_tuple(self):
        relation = AnnotatedRelation()
        tid = relation.insert(("1",))
        with pytest.raises(SchemaError):
            relation.annotate(tid, "A", AnnotationAnchor.column_anchor(0))

    def test_detach(self):
        relation = AnnotatedRelation()
        tid = relation.insert(("1",), ("A",))
        assert relation.detach(tid, "A")
        assert not relation.detach(tid, "A")


class TestColumnAnnotations:
    def test_annotate_column(self):
        relation = AnnotatedRelation(Schema(["a", "b"]))
        assert relation.annotate_column(1, "Annot_units")
        assert not relation.annotate_column(1, "Annot_units")
        assert relation.column_annotations(1) == {"Annot_units"}
        assert relation.column_annotations(0) == frozenset()

    def test_out_of_schema_column_rejected(self):
        relation = AnnotatedRelation(Schema(["a"]))
        with pytest.raises(SchemaError):
            relation.annotate_column(3, "A")

    def test_negative_column_rejected_without_schema(self):
        with pytest.raises(SchemaError):
            AnnotatedRelation().annotate_column(-1, "A")


class TestDelete:
    def test_delete_tombstones(self):
        relation = AnnotatedRelation()
        tid = relation.insert(("1",))
        relation.insert(("2",))
        relation.delete(tid)
        assert len(relation) == 1
        assert relation.tid_range == 2
        assert not relation.is_live(tid)
        with pytest.raises(UnknownTupleError):
            relation.tuple(tid)

    def test_iteration_skips_tombstones(self):
        relation = AnnotatedRelation()
        relation.insert(("1",))
        relation.insert(("2",))
        relation.delete(0)
        assert [row.values for row in relation] == [("2",)]
        assert list(relation.tids()) == [1]


class TestDataTokens:
    def test_opaque_without_schema(self):
        relation = AnnotatedRelation()
        tid = relation.insert(("10", "20"))
        assert relation.data_tokens(tid) == ("10", "20")

    def test_qualified_with_schema(self):
        relation = AnnotatedRelation(Schema(["x", "y"]))
        tid = relation.insert(("10", "20"))
        assert relation.data_tokens(tid) == ("x=10", "y=20")


class TestLabels:
    def test_set_labels_and_noop(self):
        relation = AnnotatedRelation()
        tid = relation.insert(("1",))
        relation.set_labels(tid, {"L1"})
        version = relation.version
        relation.set_labels(tid, {"L1"})  # unchanged -> no version bump
        assert relation.version == version
        assert relation.tuple(tid).labels == {"L1"}

    def test_add_labels_returns_new_only(self):
        relation = AnnotatedRelation()
        tid = relation.insert(("1",))
        relation.set_labels(tid, {"L1"})
        assert relation.add_labels(tid, {"L1", "L2"}) == {"L2"}


class TestTriggers:
    def test_insert_trigger(self):
        relation = AnnotatedRelation()
        fired = []
        relation.triggers.on_insert.append(
            lambda tid, values, annotations: fired.append(
                (tid, values, annotations)))
        relation.insert(("1",), ("A",))
        assert fired == [(0, ("1",), frozenset({"A"}))]

    def test_annotate_trigger_fires_only_when_new(self):
        relation = AnnotatedRelation()
        tid = relation.insert(("1",))
        fired = []
        relation.triggers.on_annotate.append(
            lambda tid, annotation: fired.append(annotation))
        relation.annotate(tid, "A")
        relation.annotate(tid, "A")
        assert fired == ["A"]

    def test_detach_and_delete_triggers(self):
        relation = AnnotatedRelation()
        tid = relation.insert(("1",), ("A",))
        events = []
        relation.triggers.on_detach.append(
            lambda tid, annotation: events.append(("detach", annotation)))
        relation.triggers.on_delete.append(
            lambda tid: events.append(("delete", tid)))
        relation.detach(tid, "A")
        relation.delete(tid)
        assert events == [("detach", "A"), ("delete", 0)]


class TestCopy:
    def test_copy_is_deep(self):
        relation = AnnotatedRelation()
        tid = relation.insert(("1",), ("A",))
        relation.set_labels(tid, {"L"})
        clone = relation.copy()
        clone.annotate(tid, "B")
        clone.set_labels(tid, {"L", "M"})
        assert relation.tuple(tid).annotation_ids == {"A"}
        assert relation.tuple(tid).labels == {"L"}

    def test_copy_preserves_tombstones(self):
        relation = AnnotatedRelation()
        relation.insert(("1",))
        relation.insert(("2",))
        relation.delete(0)
        clone = relation.copy()
        assert len(clone) == 1
        assert clone.tid_range == 2

"""Unit tests for relation -> transaction encoding."""

from repro.mining.itemsets import ItemKind, ItemVocabulary
from repro.relation.relation import AnnotatedRelation
from repro.relation.schema import Schema
from repro.relation.transactions import (
    annotation_item_ids,
    encode_relation,
    encode_tuple,
)


def build_relation():
    relation = AnnotatedRelation()
    relation.insert(("1", "2"), ("A",))
    relation.insert(("3", "4"))
    return relation


class TestEncodeTuple:
    def test_data_and_annotations(self):
        relation = build_relation()
        vocabulary = ItemVocabulary()
        transaction = encode_tuple(relation, 0, vocabulary)
        tokens = {vocabulary.item(item).token for item in transaction}
        assert tokens == {"1", "2", "A"}

    def test_labels_included_by_default(self):
        relation = build_relation()
        relation.set_labels(0, {"L"})
        vocabulary = ItemVocabulary()
        transaction = encode_tuple(relation, 0, vocabulary)
        kinds = {vocabulary.item(item).kind for item in transaction}
        assert ItemKind.LABEL in kinds

    def test_labels_can_be_excluded(self):
        relation = build_relation()
        relation.set_labels(0, {"L"})
        vocabulary = ItemVocabulary()
        transaction = encode_tuple(relation, 0, vocabulary,
                                   include_labels=False)
        kinds = {vocabulary.item(item).kind for item in transaction}
        assert ItemKind.LABEL not in kinds

    def test_schema_qualified_tokens(self):
        relation = AnnotatedRelation(Schema(["x", "y"]))
        relation.insert(("1", "1"))
        vocabulary = ItemVocabulary()
        transaction = encode_tuple(relation, 0, vocabulary)
        tokens = {vocabulary.item(item).token for item in transaction}
        assert tokens == {"x=1", "y=1"}
        assert len(transaction) == 2  # same value, distinct items

    def test_column_annotations_opt_in(self):
        relation = AnnotatedRelation(Schema(["x", "y"]))
        relation.insert(("1", "2"))
        relation.annotate_column(0, "Annot_col")
        vocabulary = ItemVocabulary()
        default = encode_tuple(relation, 0, vocabulary)
        tokens = {vocabulary.item(item).token for item in default}
        assert "Annot_col" not in tokens
        included = encode_tuple(relation, 0, vocabulary,
                                include_column_annotations=True)
        tokens = {vocabulary.item(item).token for item in included}
        assert "Annot_col" in tokens


class TestEncodeRelation:
    def test_tid_alignment(self):
        relation = build_relation()
        database = encode_relation(relation)
        assert len(database) == 2
        tokens_0 = {database.vocabulary.item(item).token
                    for item in database.transaction(0)}
        assert tokens_0 == {"1", "2", "A"}

    def test_tombstones_encode_empty(self):
        relation = build_relation()
        relation.delete(0)
        database = encode_relation(relation)
        assert database.transaction(0) == frozenset()
        assert database.transaction(1) != frozenset()

    def test_existing_vocabulary_reused(self):
        relation = build_relation()
        vocabulary = ItemVocabulary()
        pre_interned = vocabulary.intern_data("1")
        database = encode_relation(relation, vocabulary)
        assert database.vocabulary is vocabulary
        assert pre_interned in database.transaction(0)


class TestAnnotationItemIds:
    def test_returns_annotation_ids_only(self):
        relation = build_relation()
        vocabulary = ItemVocabulary()
        ids = annotation_item_ids(relation, vocabulary, 0)
        assert {vocabulary.item(item).token for item in ids} == {"A"}
        assert all(vocabulary.is_annotation_like(item) for item in ids)

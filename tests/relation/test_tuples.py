"""Unit tests for tuples and annotation anchors."""

import pytest

from repro.errors import SchemaError
from repro.relation.tuples import (
    AnchorScope,
    AnnotatedTuple,
    AnnotationAnchor,
)


class TestAnchor:
    def test_row_anchor(self):
        anchor = AnnotationAnchor.row()
        assert anchor.scope is AnchorScope.ROW
        assert anchor.column is None

    def test_cell_anchor_requires_column(self):
        assert AnnotationAnchor.cell(2).column == 2
        with pytest.raises(SchemaError):
            AnnotationAnchor(AnchorScope.CELL)

    def test_column_anchor_requires_column(self):
        assert AnnotationAnchor.column_anchor(1).scope is AnchorScope.COLUMN
        with pytest.raises(SchemaError):
            AnnotationAnchor(AnchorScope.COLUMN)

    def test_row_anchor_rejects_column(self):
        with pytest.raises(SchemaError):
            AnnotationAnchor(AnchorScope.ROW, column=0)


class TestAnnotatedTuple:
    def test_attach_once(self):
        row = AnnotatedTuple(tid=0, values=("1", "2"))
        assert row.attach("Annot_1")
        assert not row.attach("Annot_1")
        assert row.annotation_ids == {"Annot_1"}
        assert row.is_annotated

    def test_attach_with_cell_anchor(self):
        row = AnnotatedTuple(tid=0, values=("1", "2"))
        row.attach("Annot_1", AnnotationAnchor.cell(1))
        assert row.annotations["Annot_1"].column == 1

    def test_detach(self):
        row = AnnotatedTuple(tid=0, values=("1",))
        row.attach("Annot_1")
        assert row.detach("Annot_1")
        assert not row.detach("Annot_1")
        assert not row.is_annotated

    def test_has_annotation(self):
        row = AnnotatedTuple(tid=0, values=("1",))
        row.attach("Annot_1")
        assert row.has_annotation("Annot_1")
        assert not row.has_annotation("Annot_2")

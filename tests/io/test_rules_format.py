"""Unit tests for the Figure 7 rules output format."""

import io

import pytest

from repro.core.manager import AnnotationRuleManager
from repro.errors import FormatError
from repro.io.rules_format import (
    format_rule,
    parse_rule_line,
    parse_rules,
    write_rules,
)
from tests.conftest import make_relation


@pytest.fixture
def mined():
    manager = AnnotationRuleManager(make_relation(), min_support=0.25,
                                    min_confidence=0.6)
    manager.mine()
    return manager


class TestParse:
    def test_paper_example_line(self):
        parsed = parse_rule_line("28 85 ==> Annot_1, 0.9659, 0.4194")
        assert parsed.lhs_tokens == ("28", "85")
        assert parsed.rhs_token == "Annot_1"
        assert parsed.confidence == pytest.approx(0.9659)
        assert parsed.support == pytest.approx(0.4194)

    def test_garbage_rejected(self):
        with pytest.raises(FormatError):
            parse_rule_line("not a rule at all")

    def test_out_of_range_statistic_rejected(self):
        with pytest.raises(FormatError):
            parse_rule_line("1 ==> A, 1.5, 0.2")

    def test_comments_and_blanks_skipped(self):
        parsed = list(parse_rules(["# rules", "", "1 ==> A, 0.9, 0.5"]))
        assert len(parsed) == 1


class TestWrite:
    def test_write_and_parse_round_trip(self, mined):
        buffer = io.StringIO()
        written = write_rules(mined.rules, mined.vocabulary, buffer)
        assert written == len(mined.rules)
        parsed = list(parse_rules(io.StringIO(buffer.getvalue())))
        assert len(parsed) == written
        rendered = {format_rule(rule, mined.vocabulary)
                    for rule in mined.rules}
        for line, entry in zip(buffer.getvalue().splitlines(), parsed):
            assert line in rendered
            assert 0.0 <= entry.confidence <= 1.0

    def test_write_plain_iterable(self, mined):
        buffer = io.StringIO()
        rules = list(mined.rules)
        assert write_rules(rules, mined.vocabulary, buffer) == len(rules)

    def test_write_to_path(self, mined, tmp_path):
        path = tmp_path / "rules.txt"
        written = write_rules(mined.rules, mined.vocabulary, path)
        assert len(list(parse_rules(path))) == written

    def test_statistics_match_rule_values(self, mined):
        buffer = io.StringIO()
        write_rules(mined.rules, mined.vocabulary, buffer)
        by_line = {
            (entry.lhs_tokens, entry.rhs_token): entry
            for entry in parse_rules(io.StringIO(buffer.getvalue()))
        }
        for rule in mined.rules:
            lhs_tokens = tuple(sorted(
                mined.vocabulary.item(item).token for item in rule.lhs))
            rhs_token = mined.vocabulary.item(rule.rhs).token
            entry = by_line[(lhs_tokens, rhs_token)]
            assert entry.support == pytest.approx(rule.support, abs=1e-4)
            assert entry.confidence == pytest.approx(rule.confidence,
                                                     abs=1e-4)

"""Unit tests for the Figure 14 annotation-update format."""

import io

import pytest

from repro.core.events import AddAnnotations, RemoveAnnotations
from repro.errors import FormatError
from repro.io.updates_format import (
    read_pairs,
    read_removals,
    read_updates,
    write_updates,
)


class TestRead:
    def test_paper_example(self):
        event = read_updates(["150: Annot_3"])
        assert event.additions == ((150, "Annot_3"),)

    def test_multiple_lines_with_noise(self):
        event = read_updates(["# batch", "", "1: Annot_1", "2:Annot_2"])
        assert event.additions == ((1, "Annot_1"), (2, "Annot_2"))

    def test_read_pairs(self):
        assert read_pairs(["3: X", "4: Y"]) == [(3, "X"), (4, "Y")]

    def test_read_removals(self):
        event = read_removals(["3: X"])
        assert isinstance(event, RemoveAnnotations)
        assert event.removals == ((3, "X"),)

    def test_from_path(self, tmp_path):
        path = tmp_path / "updates.txt"
        path.write_text("9: Annot_9\n")
        assert read_updates(path).additions == ((9, "Annot_9"),)

    @pytest.mark.parametrize("bad", [
        "no colon",
        "x: Annot_1",
        "-2: Annot_1",
        "3:",
        "3: two words",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(FormatError):
            read_pairs([bad])

    def test_error_carries_line_number(self):
        with pytest.raises(FormatError) as exc:
            read_pairs(["1: ok", "broken"])
        assert exc.value.line_number == 2


class TestWriteRoundTrip:
    def test_additions_round_trip(self):
        event = AddAnnotations.build([(150, "Annot_3"), (7, "Annot_1")])
        buffer = io.StringIO()
        assert write_updates(event, buffer) == 2
        assert read_updates(buffer.getvalue().splitlines()) == event

    def test_removals_round_trip(self):
        event = RemoveAnnotations.build([(3, "X")])
        buffer = io.StringIO()
        write_updates(event, buffer)
        assert read_removals(buffer.getvalue().splitlines()) == event

    def test_write_to_path(self, tmp_path):
        event = AddAnnotations.build([(1, "A")])
        path = tmp_path / "updates_out.txt"
        write_updates(event, path)
        assert path.read_text() == "1: A\n"

"""Unit tests for the Figure 4 dataset format."""

import io

import pytest

from repro.errors import FormatError
from repro.io.dataset_format import (
    format_row,
    iter_rows,
    parse_line,
    read_dataset,
    write_dataset,
)
from tests.conftest import make_relation


class TestParseLine:
    def test_values_and_annotations_split(self):
        values, annotations = parse_line("28 85 17 Annot_4 Annot_5")
        assert values == ("28", "85", "17")
        assert annotations == ("Annot_4", "Annot_5")

    def test_no_annotations(self):
        values, annotations = parse_line("1 2 3")
        assert values == ("1", "2", "3")
        assert annotations == ()

    def test_custom_prefix(self):
        values, annotations = parse_line("1 a:x", annotation_prefix="a:")
        assert values == ("1",)
        assert annotations == ("a:x",)

    def test_annotations_only_rejected(self):
        with pytest.raises(FormatError):
            parse_line("Annot_1 Annot_2")


class TestIterRows:
    def test_blank_lines_and_comments_skipped(self):
        rows = list(iter_rows(["# header", "", "1 2 Annot_1", "   "]))
        assert rows == [(("1", "2"), ("Annot_1",))]

    def test_error_carries_line_number(self):
        with pytest.raises(FormatError) as exc:
            list(iter_rows(["1 2", "Annot_only"]))
        assert exc.value.line_number == 2


class TestReadDataset:
    def test_from_lines(self):
        relation = read_dataset(["1 2 Annot_1", "3 4"])
        assert len(relation) == 2
        assert relation.tuple(0).annotation_ids == {"Annot_1"}

    def test_from_stream(self):
        relation = read_dataset(io.StringIO("1 2\n3 4 Annot_9\n"))
        assert len(relation) == 2

    def test_from_path(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("5 6 Annot_2\n")
        relation = read_dataset(path)
        assert len(relation) == 1
        assert relation.tuple(0).values == ("5", "6")

    def test_into_existing_relation(self):
        relation = make_relation()
        before = len(relation)
        read_dataset(["7 8"], relation=relation)
        assert len(relation) == before + 1


def make_paper_relation():
    """Reference rows with paper-style ``Annot_`` ids, so that the
    prefix-based reader classifies tokens the same way after a write."""
    return make_relation([
        (("1", "2"), ("Annot_1",)),
        (("1", "3"), ("Annot_1", "Annot_2")),
        (("4", "2"), ()),
        (("4", "3"), ("Annot_2",)),
    ])


class TestWriteAndRoundTrip:
    def test_format_row_sorts_annotations(self):
        assert format_row(("1", "2"), ("Annot_5", "Annot_1")) \
            == "1 2 Annot_1 Annot_5"

    def test_round_trip(self):
        relation = make_paper_relation()
        buffer = io.StringIO()
        written = write_dataset(relation, buffer)
        assert written == len(relation)
        reread = read_dataset(io.StringIO(buffer.getvalue()))
        assert len(reread) == len(relation)
        for tid in range(len(relation)):
            assert reread.tuple(tid).values == relation.tuple(tid).values
            assert reread.tuple(tid).annotation_ids \
                == relation.tuple(tid).annotation_ids

    def test_round_trip_via_path(self, tmp_path):
        relation = make_paper_relation()
        path = tmp_path / "out.txt"
        write_dataset(relation, path)
        assert len(read_dataset(path)) == len(relation)

    def test_tombstones_excluded(self):
        relation = make_paper_relation()
        relation.delete(0)
        buffer = io.StringIO()
        assert write_dataset(relation, buffer) == len(relation)

    def test_empty_relation(self):
        from repro.relation.relation import AnnotatedRelation
        buffer = io.StringIO()
        assert write_dataset(AnnotatedRelation(), buffer) == 0
        assert buffer.getvalue() == ""

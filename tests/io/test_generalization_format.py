"""Unit tests for the Figure 9 generalization-rules format."""

import io

import pytest

from repro.errors import FormatError
from repro.generalization.rules import (
    CategoryMatcher,
    IdMatcher,
    KeywordMatcher,
    RegexMatcher,
)
from repro.io.generalization_format import (
    parse_generalization_rules,
    write_generalization_rules,
)
from repro.relation.annotation import Annotation

SAMPLE = """
# paper Figure 9 sample
Annot_X <= Annot_1 | Annot_5
Annot_Y <= Annot_4
Invalidation <= text has "invalid" "wrong" "incorrect"
Versioning <= text ~ "v[0-9]+"
Provenance <= category = lineage

[hierarchy]
Invalidation -> QualityIssue
Versioning -> Metadata
"""


class TestParse:
    def test_full_sample(self):
        rules, hierarchy = parse_generalization_rules(
            io.StringIO(SAMPLE).readlines())
        assert len(rules) == 5
        by_label = {rule.label: rule.matcher for rule in rules}
        assert isinstance(by_label["Annot_X"], IdMatcher)
        assert by_label["Annot_X"].annotation_ids == {"Annot_1", "Annot_5"}
        assert isinstance(by_label["Invalidation"], KeywordMatcher)
        assert isinstance(by_label["Versioning"], RegexMatcher)
        assert isinstance(by_label["Provenance"], CategoryMatcher)
        assert hierarchy is not None
        assert hierarchy.ancestors("Invalidation") == {"QualityIssue"}

    def test_paper_semantics(self):
        """Every transaction with Annot_1 or Annot_5 gets Annot_X."""
        rules, _ = parse_generalization_rules(
            io.StringIO(SAMPLE).readlines())
        labels = {rule.label for rule in rules
                  if rule.applies_to(Annotation("Annot_1"))}
        assert "Annot_X" in labels

    def test_from_path(self, tmp_path):
        path = tmp_path / "gen.txt"
        path.write_text(SAMPLE)
        rules, hierarchy = parse_generalization_rules(path)
        assert len(rules) == 5

    def test_no_hierarchy_section(self):
        rules, hierarchy = parse_generalization_rules(["L <= Annot_1"])
        assert hierarchy is None

    @pytest.mark.parametrize("bad_line", [
        "no arrow here",
        "Label <=",
        "<= Annot_1",
        'L <= text has',
        'L <= text ~ "a" "b"',
        "L <= category =",
        "L <= Annot_1 | | Annot_2",
    ])
    def test_malformed_lines_rejected(self, bad_line):
        with pytest.raises(FormatError):
            parse_generalization_rules([bad_line])

    def test_malformed_hierarchy_rejected(self):
        with pytest.raises(FormatError):
            parse_generalization_rules(["[hierarchy]", "A B"])


class TestWriteRoundTrip:
    def test_round_trip(self):
        rules, hierarchy = parse_generalization_rules(
            io.StringIO(SAMPLE).readlines())
        buffer = io.StringIO()
        write_generalization_rules(rules, buffer, hierarchy)
        reread_rules, reread_hierarchy = parse_generalization_rules(
            buffer.getvalue().splitlines())
        assert {rule.describe() for rule in reread_rules} \
            == {rule.describe() for rule in rules}
        assert reread_hierarchy is not None
        assert reread_hierarchy.ancestors("Invalidation") \
            == hierarchy.ancestors("Invalidation")

    def test_write_to_path(self, tmp_path):
        rules, _ = parse_generalization_rules(["L <= Annot_1"])
        path = tmp_path / "gen_out.txt"
        lines = write_generalization_rules(rules, path)
        assert lines == 1
        assert path.read_text().strip() == "L <= Annot_1"

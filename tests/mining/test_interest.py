"""Unit tests for rule interestingness measures."""

import math

import pytest

from repro.core.rules import AssociationRule, RuleKind
from repro.errors import MiningError
from repro.mining.interest import (
    MEASURES,
    RuleCounts,
    conviction,
    evaluate,
    imbalance_ratio,
    jaccard,
    kulczynski,
    leverage,
    lift,
)


def counts(n=100, n_lhs=40, n_rhs=30, n_both=24):
    return RuleCounts(n=n, n_lhs=n_lhs, n_rhs=n_rhs, n_both=n_both)


class TestRuleCounts:
    def test_validation(self):
        with pytest.raises(MiningError):
            RuleCounts(n=10, n_lhs=5, n_rhs=5, n_both=6)
        with pytest.raises(MiningError):
            RuleCounts(n=10, n_lhs=11, n_rhs=5, n_both=2)
        with pytest.raises(MiningError):
            RuleCounts(n=-1, n_lhs=0, n_rhs=0, n_both=0)

    def test_from_rule(self):
        rule = AssociationRule(kind=RuleKind.DATA_TO_ANNOTATION, lhs=(0,),
                               rhs=1, union_count=24, lhs_count=40,
                               db_size=100)
        assert RuleCounts.from_rule(rule, rhs_count=30) == counts()


class TestMeasures:
    def test_independence_baselines(self):
        # P(both) == P(lhs)P(rhs): lift 1, leverage 0.
        independent = counts(n=100, n_lhs=40, n_rhs=30, n_both=12)
        assert lift(independent) == pytest.approx(1.0)
        assert leverage(independent) == pytest.approx(0.0)

    def test_positive_correlation(self):
        correlated = counts()  # 0.24 > 0.4*0.3
        assert lift(correlated) > 1.0
        assert leverage(correlated) > 0.0

    def test_conviction_infinite_for_exceptionless(self):
        perfect = counts(n_both=40, n_rhs=50)
        assert conviction(perfect) == math.inf

    def test_conviction_finite_otherwise(self):
        value = conviction(counts())
        assert 0.0 < value < math.inf

    def test_jaccard(self):
        assert jaccard(counts()) == pytest.approx(24 / (40 + 30 - 24))
        assert jaccard(counts(n_lhs=0, n_rhs=0, n_both=0)) == 0.0

    def test_kulczynski(self):
        assert kulczynski(counts()) \
            == pytest.approx((24 / 40 + 24 / 30) / 2)

    def test_imbalance_ratio(self):
        assert imbalance_ratio(counts()) \
            == pytest.approx(abs(40 - 30) / (40 + 30 - 24))
        balanced = counts(n_lhs=30, n_rhs=30, n_both=20)
        assert imbalance_ratio(balanced) == 0.0

    def test_kulczynski_is_null_invariant(self):
        """Adding tuples containing neither side must not move it."""
        base = counts()
        grown = counts(n=10_000)
        assert kulczynski(base) == pytest.approx(kulczynski(grown))
        # ...unlike lift, which null-transactions inflate:
        assert lift(grown) > lift(base)


class TestEvaluate:
    def test_named_measures(self):
        rule = AssociationRule(kind=RuleKind.DATA_TO_ANNOTATION, lhs=(0,),
                               rhs=1, union_count=24, lhs_count=40,
                               db_size=100)
        out = evaluate(rule, rhs_count=30, measures=("lift", "jaccard"))
        assert set(out) == {"lift", "jaccard"}
        assert out["lift"] == pytest.approx(lift(counts()))

    def test_unknown_measure(self):
        rule = AssociationRule(kind=RuleKind.DATA_TO_ANNOTATION, lhs=(0,),
                               rhs=1, union_count=1, lhs_count=1,
                               db_size=2)
        with pytest.raises(MiningError, match="unknown interestingness"):
            evaluate(rule, rhs_count=1, measures=("entropy",))

    def test_registry_complete(self):
        for name, function in MEASURES.items():
            value = function(counts())
            assert isinstance(value, float), name

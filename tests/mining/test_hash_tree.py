"""Unit tests for the hash-tree candidate counter."""

import itertools

import pytest

from repro.errors import MiningError
from repro.mining.hash_tree import HashTree


def brute_force_counts(candidates, transactions):
    return {candidate: sum(1 for transaction in transactions
                           if set(candidate) <= transaction)
            for candidate in candidates}


class TestConstruction:
    def test_rejects_mixed_lengths(self):
        with pytest.raises(MiningError):
            HashTree([(1, 2), (1, 2, 3)])

    def test_rejects_empty_candidate(self):
        with pytest.raises(MiningError):
            HashTree([()])

    def test_rejects_bad_fanout(self):
        with pytest.raises(MiningError):
            HashTree([(1, 2)], fanout=1)

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(MiningError):
            HashTree([(1, 2)], max_leaf_size=0)

    def test_empty_tree_counts_nothing(self):
        tree = HashTree([])
        tree.count_transaction(frozenset({1, 2, 3}))
        assert tree.result() == {}


class TestCounting:
    def test_simple_pair_counting(self):
        candidates = [(1, 2), (2, 3), (1, 3)]
        transactions = [frozenset({1, 2, 3}), frozenset({1, 2}),
                        frozenset({3})]
        tree = HashTree(candidates)
        assert tree.count_all(transactions) == {
            (1, 2): 2, (2, 3): 1, (1, 3): 1}

    def test_short_transactions_skipped(self):
        tree = HashTree([(1, 2, 3)])
        tree.count_transaction(frozenset({1, 2}))
        assert tree.result() == {(1, 2, 3): 0}

    def test_forced_splits_still_exact(self, seeds):
        # Tiny leaves force deep splits including same-bucket collisions.
        universe = list(range(30))
        candidates = list(itertools.combinations(universe[:12], 3))
        rng = seeds.rng(5)
        transactions = [frozenset(rng.sample(universe, 9))
                        for _ in range(60)]
        tree = HashTree(candidates, fanout=3, max_leaf_size=1)
        assert tree.count_all(transactions) == brute_force_counts(
            candidates, transactions)

    def test_random_against_brute_force(self, seeds):
        rng = seeds.rng(13)
        universe = list(range(25))
        for trial in range(5):
            length = rng.randint(2, 4)
            candidates = list({tuple(sorted(rng.sample(universe, length)))
                               for _ in range(40)})
            transactions = [frozenset(rng.sample(universe,
                                                 rng.randint(0, 12)))
                            for _ in range(80)]
            tree = HashTree(candidates, fanout=rng.choice([2, 4, 8]),
                            max_leaf_size=rng.choice([1, 4, 16]))
            assert tree.count_all(transactions) == brute_force_counts(
                candidates, transactions), f"trial {trial}"

    def test_len(self):
        assert len(HashTree([(1, 2), (3, 4)])) == 2

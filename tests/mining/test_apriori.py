"""Unit tests for the level-wise Apriori miner."""

import pytest

from repro.errors import MiningError
from repro.mining.apriori import (
    count_candidates,
    generate_candidates,
    mine_frequent_itemsets,
    mine_task,
    resolve_min_count,
)
from repro.mining.constraints import (
    AnnotationOnlyConstraint,
    AtMostOneAnnotationConstraint,
    MiningTask,
)
from repro.mining.itemsets import TransactionDatabase

#: The classic textbook example: items 1..5.
TRANSACTIONS = [
    frozenset({1, 3, 4}),
    frozenset({2, 3, 5}),
    frozenset({1, 2, 3, 5}),
    frozenset({2, 5}),
]


class TestResolveMinCount:
    def test_fraction_to_count(self):
        assert resolve_min_count(10, 0.3, None) == 3
        assert resolve_min_count(10, 0.25, None) == 3
        assert resolve_min_count(10, 0.2, None) == 2

    def test_exact_boundary_not_rounded_up(self):
        # support 0.5 of 4 transactions means count >= 2, not 3.
        assert resolve_min_count(4, 0.5, None) == 2

    def test_absolute_count_passthrough(self):
        assert resolve_min_count(10, None, 4) == 4

    def test_both_or_neither_rejected(self):
        with pytest.raises(MiningError):
            resolve_min_count(10, 0.5, 2)
        with pytest.raises(MiningError):
            resolve_min_count(10, None, None)

    def test_bad_values_rejected(self):
        with pytest.raises(MiningError):
            resolve_min_count(10, None, 0)
        with pytest.raises(Exception):
            resolve_min_count(10, 1.5, None)


class TestCandidateGeneration:
    def test_pairs_from_singletons(self):
        level = {(1,), (2,), (3,)}
        assert sorted(generate_candidates(level)) == [(1, 2), (1, 3), (2, 3)]

    def test_subset_pruning(self):
        # (1,2) and (1,3) join to (1,2,3) but (2,3) is infrequent.
        level = {(1, 2), (1, 3)}
        assert generate_candidates(level) == []

    def test_triple_generation(self):
        level = {(1, 2), (1, 3), (2, 3)}
        assert generate_candidates(level) == [(1, 2, 3)]


class TestCountCandidates:
    @pytest.mark.parametrize("counter",
                             ["hashtree", "scan", "auto", "vertical"])
    def test_strategies_agree(self, counter):
        candidates = [(1, 2), (2, 5), (3, 5), (1, 5)]
        counts = count_candidates(candidates, TRANSACTIONS, counter=counter)
        assert counts == {(1, 2): 1, (2, 5): 3, (3, 5): 2, (1, 5): 1}

    def test_unknown_strategy(self):
        with pytest.raises(MiningError):
            count_candidates([(1, 2)], TRANSACTIONS, counter="quantum")

    def test_empty_candidates(self):
        assert count_candidates([], TRANSACTIONS) == {}


class TestMineFrequentItemsets:
    def test_textbook_example(self):
        table = mine_frequent_itemsets(TRANSACTIONS, min_count=2)
        assert table == {
            (1,): 2, (2,): 3, (3,): 3, (5,): 3,
            (1, 3): 2, (2, 3): 2, (2, 5): 3, (3, 5): 2,
            (2, 3, 5): 2,
        }

    def test_min_support_fraction(self):
        table = mine_frequent_itemsets(TRANSACTIONS, min_support=0.75)
        assert set(table) == {(2,), (3,), (5,), (2, 5)}

    def test_max_length_caps_levels(self):
        table = mine_frequent_itemsets(TRANSACTIONS, min_count=2,
                                       max_length=2)
        assert (2, 3, 5) not in table
        assert (2, 5) in table

    def test_empty_database(self):
        assert mine_frequent_itemsets([], min_count=1) == {}

    def test_counts_are_exact(self):
        table = mine_frequent_itemsets(TRANSACTIONS, min_count=1)
        for itemset, count in table.items():
            expected = sum(1 for transaction in TRANSACTIONS
                           if set(itemset) <= transaction)
            assert count == expected, itemset


class TestConstrainedMining:
    @pytest.fixture
    def database(self):
        database = TransactionDatabase()
        database.add_tokens(("1", "2"), ("A",))
        database.add_tokens(("1", "3"), ("A", "B"))
        database.add_tokens(("1", "2"), ("A",))
        database.add_tokens(("4", "2"), ())
        database.add_tokens(("1", "3"), ("A", "B"))
        return database

    def test_annotation_only_task(self, database):
        table = mine_task(database, MiningTask.ANNOTATION_TO_ANNOTATION,
                          min_count=2)
        vocabulary = database.vocabulary
        for itemset in table:
            assert all(vocabulary.is_annotation_like(item)
                       for item in itemset)
        annotation_a = vocabulary.find_annotation("A")
        annotation_b = vocabulary.find_annotation("B")
        assert table[tuple(sorted((annotation_a, annotation_b)))] == 2

    def test_d2a_task_prunes_two_annotation_patterns(self, database):
        table = mine_task(database, MiningTask.DATA_TO_ANNOTATION,
                          min_count=2)
        vocabulary = database.vocabulary
        assert all(vocabulary.count_annotation_like(itemset) <= 1
                   for itemset in table)
        # Data-only denominators must be retained.
        from repro.mining.itemsets import Item, ItemKind
        value_1 = vocabulary.id_of(Item(ItemKind.DATA, "1"))
        assert (value_1,) in table

    def test_constraint_does_not_change_admitted_counts(self, database):
        unrestricted = mine_task(database, MiningTask.UNRESTRICTED,
                                 min_count=2)
        constrained = mine_task(database, MiningTask.DATA_TO_ANNOTATION,
                                min_count=2)
        for itemset, count in constrained.items():
            assert unrestricted[itemset] == count

    def test_projection_equivalent_to_postfilter(self, database):
        projected = mine_task(database, MiningTask.ANNOTATION_TO_ANNOTATION,
                              min_count=2)
        unrestricted = mine_task(database, MiningTask.UNRESTRICTED,
                                 min_count=2)
        vocabulary = database.vocabulary
        filtered = {
            itemset: count for itemset, count in unrestricted.items()
            if all(vocabulary.is_annotation_like(item) for item in itemset)
        }
        assert projected == filtered


class TestCounterEquivalence:
    @pytest.mark.parametrize("counter", ["hashtree", "scan", "vertical"])
    def test_same_table_for_every_counter(self, counter):
        baseline = mine_frequent_itemsets(TRANSACTIONS, min_count=2,
                                          counter="auto")
        assert mine_frequent_itemsets(TRANSACTIONS, min_count=2,
                                      counter=counter) == baseline

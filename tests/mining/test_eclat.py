"""Unit tests for vertical (tidset) mining and seeded search."""


import pytest

from repro.mining.apriori import mine_frequent_itemsets
from repro.mining.constraints import CombinedRelevanceConstraint
from repro.mining.eclat import (
    build_vertical_index,
    count_itemset,
    mine_containing,
    mine_frequent_itemsets_vertical,
    tids_of,
)
from repro.mining.itemsets import ItemVocabulary

TRANSACTIONS = [
    frozenset({1, 3, 4}),
    frozenset({2, 3, 5}),
    frozenset({1, 2, 3, 5}),
    frozenset({2, 5}),
]


class TestVerticalIndex:
    def test_build(self):
        index = build_vertical_index(TRANSACTIONS)
        assert index[3] == {0, 1, 2}
        assert index[4] == {0}

    def test_count_itemset(self):
        index = build_vertical_index(TRANSACTIONS)
        assert count_itemset(index, (2, 5)) == 3
        assert count_itemset(index, (1, 4)) == 1
        assert count_itemset(index, (4, 5)) == 0
        assert count_itemset(index, (9,)) == 0

    def test_count_empty_itemset_needs_universe(self):
        index = build_vertical_index(TRANSACTIONS)
        assert count_itemset(index, (), universe_size=4) == 4
        with pytest.raises(ValueError):
            count_itemset(index, ())

    def test_tids_of(self):
        index = build_vertical_index(TRANSACTIONS)
        assert tids_of(index, (2, 5)) == {1, 2, 3}
        with pytest.raises(ValueError):
            tids_of(index, ())


class TestEclatAgreesWithApriori:
    def test_textbook(self):
        horizontal = mine_frequent_itemsets(TRANSACTIONS, min_count=2)
        vertical = mine_frequent_itemsets_vertical(TRANSACTIONS, min_count=2)
        assert horizontal == vertical

    def test_random_databases(self, seeds):
        rng = seeds.rng(71)
        for trial in range(8):
            transactions = [
                frozenset(rng.sample(range(12), rng.randint(0, 7)))
                for _ in range(rng.randint(5, 40))
            ]
            min_count = rng.randint(1, 4)
            assert mine_frequent_itemsets(transactions,
                                          min_count=min_count) \
                == mine_frequent_itemsets_vertical(transactions,
                                                   min_count=min_count), \
                f"trial {trial}"

    def test_max_length(self):
        vertical = mine_frequent_itemsets_vertical(TRANSACTIONS, min_count=2,
                                                   max_length=2)
        assert (2, 3, 5) not in vertical
        assert (2, 5) in vertical


class TestMineContaining:
    def test_counts_are_global(self):
        index = build_vertical_index(TRANSACTIONS)
        mined = mine_containing(index, 5, min_count=2)
        assert mined[(5,)] == 3
        assert mined[(2, 5)] == 3
        assert mined[(3, 5)] == 2
        assert mined[(2, 3, 5)] == 2
        # Nothing without the seed.
        assert all(5 in itemset for itemset in mined)

    def test_equals_filtered_global_mining(self):
        index = build_vertical_index(TRANSACTIONS)
        full = mine_frequent_itemsets(TRANSACTIONS, min_count=2)
        for seed in (1, 2, 3, 5):
            seeded = mine_containing(index, seed, min_count=2)
            expected = {itemset: count for itemset, count in full.items()
                        if seed in itemset}
            assert seeded == expected, f"seed {seed}"

    def test_infrequent_seed_returns_nothing(self):
        index = build_vertical_index(TRANSACTIONS)
        assert mine_containing(index, 4, min_count=2) == {}
        assert mine_containing(index, 99, min_count=1) == {}

    def test_candidate_items_restriction(self):
        index = build_vertical_index(TRANSACTIONS)
        mined = mine_containing(index, 5, min_count=2,
                                candidate_items=[2])
        assert set(mined) == {(5,), (2, 5)}

    def test_constraint_pruning(self):
        vocabulary = ItemVocabulary()
        data_x = vocabulary.intern_data("x")
        data_y = vocabulary.intern_data("y")
        annotation_a = vocabulary.intern_annotation("A")
        annotation_b = vocabulary.intern_annotation("B")
        transactions = [frozenset({data_x, data_y, annotation_a,
                                   annotation_b})] * 3
        index = build_vertical_index(transactions)
        constraint = CombinedRelevanceConstraint(vocabulary)
        mined = mine_containing(index, annotation_a, min_count=2,
                                constraint=constraint)
        for itemset in mined:
            assert constraint.admits(itemset)
        # Annotation-only pair and single-annotation-with-data survive.
        assert tuple(sorted((annotation_a, annotation_b))) in mined
        assert tuple(sorted((data_x, annotation_a))) in mined
        # Mixed with two annotations must be pruned.
        bad = tuple(sorted((data_x, annotation_a, annotation_b)))
        assert bad not in mined

"""Unit tests for the FP-growth backend."""


from repro.mining.apriori import mine_frequent_itemsets
from repro.mining.constraints import (
    AnnotationOnlyConstraint,
    CombinedRelevanceConstraint,
)
from repro.mining.fpgrowth import mine_frequent_itemsets_fp
from repro.mining.itemsets import ItemVocabulary

TRANSACTIONS = [
    frozenset({1, 3, 4}),
    frozenset({2, 3, 5}),
    frozenset({1, 2, 3, 5}),
    frozenset({2, 5}),
]


class TestAgainstApriori:
    def test_textbook(self):
        assert mine_frequent_itemsets_fp(TRANSACTIONS, min_count=2) \
            == mine_frequent_itemsets(TRANSACTIONS, min_count=2)

    def test_min_count_one_includes_everything(self):
        assert mine_frequent_itemsets_fp(TRANSACTIONS, min_count=1) \
            == mine_frequent_itemsets(TRANSACTIONS, min_count=1)

    def test_random_databases(self, seeds):
        rng = seeds.rng(99)
        for trial in range(10):
            transactions = [
                frozenset(rng.sample(range(10), rng.randint(0, 6)))
                for _ in range(rng.randint(4, 30))
            ]
            min_count = rng.randint(1, 4)
            assert mine_frequent_itemsets_fp(
                transactions, min_count=min_count) \
                == mine_frequent_itemsets(transactions,
                                          min_count=min_count), \
                f"trial {trial}"

    def test_single_path_database(self):
        # Every transaction is a prefix chain -> exercises the
        # single-path combination emitter.
        transactions = [frozenset({1}), frozenset({1, 2}),
                        frozenset({1, 2, 3}), frozenset({1, 2, 3})]
        assert mine_frequent_itemsets_fp(transactions, min_count=2) \
            == mine_frequent_itemsets(transactions, min_count=2)

    def test_empty_database(self):
        assert mine_frequent_itemsets_fp([], min_count=1) == {}

    def test_max_length(self):
        table = mine_frequent_itemsets_fp(TRANSACTIONS, min_count=2,
                                          max_length=2)
        expected = mine_frequent_itemsets(TRANSACTIONS, min_count=2,
                                          max_length=2)
        assert table == expected


class TestConstraints:
    def _database(self):
        vocabulary = ItemVocabulary()
        data_x = vocabulary.intern_data("x")
        data_y = vocabulary.intern_data("y")
        annotation_a = vocabulary.intern_annotation("A")
        annotation_b = vocabulary.intern_annotation("B")
        transactions = [
            frozenset({data_x, annotation_a}),
            frozenset({data_x, data_y, annotation_a, annotation_b}),
            frozenset({data_y, annotation_b}),
            frozenset({data_x, annotation_a, annotation_b}),
        ]
        return vocabulary, transactions

    def test_annotation_only_projection(self):
        vocabulary, transactions = self._database()
        constraint = AnnotationOnlyConstraint(vocabulary)
        fp_table = mine_frequent_itemsets_fp(transactions, min_count=2,
                                             constraint=constraint)
        apriori_table = mine_frequent_itemsets(transactions, min_count=2,
                                               constraint=constraint)
        assert fp_table == apriori_table

    def test_combined_constraint_postfilter(self):
        vocabulary, transactions = self._database()
        constraint = CombinedRelevanceConstraint(vocabulary)
        fp_table = mine_frequent_itemsets_fp(transactions, min_count=2,
                                             constraint=constraint)
        apriori_table = mine_frequent_itemsets(transactions, min_count=2,
                                               constraint=constraint)
        assert fp_table == apriori_table

"""Unit tests for closed/maximal itemsets and rule compression."""


from repro.core.rules import AssociationRule, RuleKind
from repro.mining.apriori import mine_frequent_itemsets
from repro.mining.closed import (
    closed_itemsets,
    compress_rules,
    compression_ratio,
    maximal_itemsets,
)


def brute_force_closed(table):
    out = {}
    for itemset, count in table.items():
        closed = True
        for other, other_count in table.items():
            if set(itemset) < set(other) and other_count == count:
                closed = False
                break
        if closed:
            out[itemset] = count
    return out


def brute_force_maximal(table):
    out = {}
    for itemset in table:
        if not any(set(itemset) < set(other) for other in table):
            out[itemset] = table[itemset]
    return out


class TestClosed:
    def test_perfectly_correlated_pair(self):
        transactions = [frozenset({1, 2})] * 3 + [frozenset({3})]
        table = mine_frequent_itemsets(transactions, min_count=1)
        closed = closed_itemsets(table)
        # {1} and {2} always co-occur with {1,2}: only the pair is closed.
        assert (1, 2) in closed
        assert (1,) not in closed
        assert (2,) not in closed
        assert (3,) in closed

    def test_matches_brute_force_on_random_tables(self, seeds):
        rng = seeds.rng(8)
        for trial in range(8):
            transactions = [
                frozenset(rng.sample(range(8), rng.randint(0, 5)))
                for _ in range(20)]
            table = mine_frequent_itemsets(transactions, min_count=2)
            assert closed_itemsets(table) == brute_force_closed(table), \
                f"trial {trial}"

    def test_closed_preserves_counts(self):
        transactions = [frozenset({1, 2, 3})] * 2 + [frozenset({1})] * 2
        table = mine_frequent_itemsets(transactions, min_count=2)
        for itemset, count in closed_itemsets(table).items():
            assert table[itemset] == count


class TestMaximal:
    def test_maximal_subset_of_closed(self, seeds):
        rng = seeds.rng(9)
        transactions = [frozenset(rng.sample(range(8), rng.randint(0, 5)))
                        for _ in range(25)]
        table = mine_frequent_itemsets(transactions, min_count=2)
        maximal = maximal_itemsets(table)
        closed = closed_itemsets(table)
        assert set(maximal) <= set(closed)

    def test_matches_brute_force(self, seeds):
        rng = seeds.rng(10)
        transactions = [frozenset(rng.sample(range(7), rng.randint(0, 5)))
                        for _ in range(20)]
        table = mine_frequent_itemsets(transactions, min_count=2)
        assert maximal_itemsets(table) == brute_force_maximal(table)


class TestCompressionRatio:
    def test_redundant_table_compresses(self):
        transactions = [frozenset({1, 2, 3})] * 4
        table = mine_frequent_itemsets(transactions, min_count=2)
        assert compression_ratio(table) < 0.2  # only {1,2,3} is closed

    def test_empty_table(self):
        assert compression_ratio({}) == 1.0


def rule(lhs, rhs=9, union=4, lhs_count=5, db=10):
    return AssociationRule(kind=RuleKind.DATA_TO_ANNOTATION,
                           lhs=tuple(lhs), rhs=rhs, union_count=union,
                           lhs_count=lhs_count, db_size=db)


class TestCompressRules:
    def test_longer_equivalent_lhs_dropped(self):
        short = rule((1,))
        long = rule((1, 2))  # same counts, superset LHS
        kept = compress_rules([long, short])
        assert kept == [short]

    def test_different_stats_both_kept(self):
        first = rule((1,), union=4)
        second = rule((1, 2), union=3, lhs_count=4)
        kept = compress_rules([first, second])
        assert len(kept) == 2

    def test_incomparable_lhs_both_kept(self):
        first = rule((1,))
        second = rule((2,))
        assert len(compress_rules([first, second])) == 2

    def test_deterministic_order(self):
        rules = [rule((2,)), rule((1,)), rule((1, 3), union=3,
                                              lhs_count=4)]
        assert compress_rules(rules) == compress_rules(list(reversed(rules)))

    def test_works_on_ruleset(self, mined_manager):
        from repro.core.rules import RuleSet
        kept = compress_rules(mined_manager.rules)
        assert len(kept) <= len(mined_manager.rules)
        assert all(isinstance(r, AssociationRule) for r in kept)

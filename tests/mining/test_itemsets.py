"""Unit tests for the item model and transaction containers."""

import pytest

from repro.errors import ItemKindError, VocabularyError
from repro.mining.itemsets import (
    Item,
    ItemKind,
    ItemVocabulary,
    TransactionDatabase,
    canonical,
    contains,
)


class TestItem:
    def test_kinds_are_distinct_items(self):
        data = Item(ItemKind.DATA, "x")
        annotation = Item(ItemKind.ANNOTATION, "x")
        assert data != annotation

    def test_annotation_and_label_are_annotation_like(self):
        assert Item(ItemKind.ANNOTATION, "a").is_annotation_like
        assert Item(ItemKind.LABEL, "l").is_annotation_like
        assert not Item(ItemKind.DATA, "d").is_annotation_like

    def test_empty_token_rejected(self):
        with pytest.raises(ItemKindError):
            Item(ItemKind.DATA, "")

    def test_non_string_token_rejected(self):
        with pytest.raises(ItemKindError):
            Item(ItemKind.DATA, 42)


class TestItemVocabulary:
    def test_interning_is_idempotent(self):
        vocabulary = ItemVocabulary()
        first = vocabulary.intern_data("x")
        second = vocabulary.intern_data("x")
        assert first == second
        assert len(vocabulary) == 1

    def test_ids_are_dense_and_stable(self):
        vocabulary = ItemVocabulary()
        ids = [vocabulary.intern_data(token) for token in "abc"]
        assert ids == [0, 1, 2]

    def test_item_round_trip(self):
        vocabulary = ItemVocabulary()
        item_id = vocabulary.intern_annotation("Annot_1")
        assert vocabulary.item(item_id) == Item(ItemKind.ANNOTATION,
                                                "Annot_1")
        assert vocabulary.id_of(Item(ItemKind.ANNOTATION, "Annot_1")) \
            == item_id

    def test_unknown_id_raises(self):
        vocabulary = ItemVocabulary()
        with pytest.raises(VocabularyError):
            vocabulary.item(0)
        with pytest.raises(VocabularyError):
            vocabulary.item("zero")

    def test_unknown_item_raises(self):
        vocabulary = ItemVocabulary()
        with pytest.raises(VocabularyError):
            vocabulary.id_of(Item(ItemKind.DATA, "missing"))

    def test_find_annotation(self):
        vocabulary = ItemVocabulary()
        item_id = vocabulary.intern_annotation("Annot_9")
        assert vocabulary.find_annotation("Annot_9") == item_id
        with pytest.raises(VocabularyError):
            vocabulary.find_annotation("Annot_0")

    def test_annotation_like_partition(self):
        vocabulary = ItemVocabulary()
        data_id = vocabulary.intern_data("d")
        annotation_id = vocabulary.intern_annotation("a")
        label_id = vocabulary.intern_label("l")
        assert vocabulary.annotation_like_ids() == {annotation_id, label_id}
        assert vocabulary.data_ids() == {data_id}
        assert not vocabulary.is_annotation_like(data_id)
        assert vocabulary.is_annotation_like(label_id)

    def test_is_annotation_like_unknown_id(self):
        with pytest.raises(VocabularyError):
            ItemVocabulary().is_annotation_like(5)

    def test_count_annotation_like(self):
        vocabulary = ItemVocabulary()
        ids = [vocabulary.intern_data("d"),
               vocabulary.intern_annotation("a"),
               vocabulary.intern_label("l")]
        assert vocabulary.count_annotation_like(ids) == 2

    def test_render_puts_data_first(self):
        vocabulary = ItemVocabulary()
        annotation = vocabulary.intern_annotation("Annot_1")
        data = vocabulary.intern_data("42")
        assert vocabulary.render((annotation, data)) == "42 Annot_1"

    def test_contains_and_iter(self):
        vocabulary = ItemVocabulary()
        vocabulary.intern_data("x")
        assert Item(ItemKind.DATA, "x") in vocabulary
        assert Item(ItemKind.DATA, "y") not in vocabulary
        assert [item.token for item in vocabulary] == ["x"]


class TestTransactionDatabase:
    def test_add_tokens_assigns_sequential_tids(self):
        database = TransactionDatabase()
        assert database.add_tokens(("1", "2"), ("A",)) == 0
        assert database.add_tokens(("3",)) == 1
        assert len(database) == 2

    def test_add_checks_vocabulary(self):
        database = TransactionDatabase()
        with pytest.raises(VocabularyError):
            database.add([0])

    def test_extend_and_shrink(self):
        database = TransactionDatabase()
        tid = database.add_tokens(("1",), ("A",))
        annotation_b = database.vocabulary.intern_annotation("B")
        database.extend_transaction(tid, [annotation_b])
        assert annotation_b in database.transaction(tid)
        database.shrink_transaction(tid, [annotation_b])
        assert annotation_b not in database.transaction(tid)

    def test_clear_transaction_returns_old_items(self):
        database = TransactionDatabase()
        tid = database.add_tokens(("1", "2"))
        old = database.clear_transaction(tid)
        assert len(old) == 2
        assert database.transaction(tid) == frozenset()

    def test_annotation_projection(self):
        database = TransactionDatabase()
        database.add_tokens(("1", "2"), ("A",))
        database.add_tokens(("3",))
        projected = database.annotation_projection()
        annotation_id = database.vocabulary.find_annotation("A")
        assert projected[0] == frozenset({annotation_id})
        assert projected[1] == frozenset()

    def test_shared_vocabulary(self):
        from repro.mining.itemsets import ItemVocabulary
        vocabulary = ItemVocabulary()
        database = TransactionDatabase(vocabulary)
        assert database.vocabulary is vocabulary


class TestHelpers:
    def test_canonical_sorts_and_dedupes(self):
        assert canonical([3, 1, 3, 2]) == (1, 2, 3)

    def test_contains(self):
        transaction = frozenset({1, 2, 3})
        assert contains(transaction, (1, 3))
        assert not contains(transaction, (1, 4))
        assert contains(transaction, ())

"""Unit tests for the FUP-style insert maintenance."""


import pytest

from repro.errors import MaintenanceError
from repro.mining.apriori import mine_frequent_itemsets
from repro.mining.constraints import UnrestrictedConstraint
from repro.mining.eclat import build_vertical_index
from repro.mining.fup import fup_update
from repro._util import min_count_for


def apply_fup(base, increment, keep_fraction):
    """Mine base, apply the increment via FUP, return the table."""
    table = mine_frequent_itemsets(
        base, min_count=min_count_for(keep_fraction, len(base)))
    full = list(base) + list(increment)
    index = build_vertical_index(full)
    fup_update(table, increment, index=index, new_size=len(full),
               keep_fraction=keep_fraction,
               constraint=UnrestrictedConstraint())
    return table


def mine_directly(full, keep_fraction):
    return mine_frequent_itemsets(
        full, min_count=min_count_for(keep_fraction, len(full)))


class TestFupEquivalence:
    def test_small_example(self):
        base = [frozenset({1, 2}), frozenset({1, 3}), frozenset({2, 3})]
        increment = [frozenset({1, 2}), frozenset({1, 2, 3})]
        assert apply_fup(base, increment, 0.4) \
            == mine_directly(base + increment, 0.4)

    def test_new_item_only_in_increment(self):
        base = [frozenset({1})] * 4
        increment = [frozenset({9})] * 4
        table = apply_fup(base, increment, 0.4)
        assert table == mine_directly(base + increment, 0.4)
        assert (9,) in table

    def test_dilution_prunes_old_entries(self):
        base = [frozenset({1, 2})] * 2 + [frozenset({3})] * 2
        increment = [frozenset({3})] * 6
        table = apply_fup(base, increment, 0.4)
        assert table == mine_directly(base + increment, 0.4)
        assert (1, 2) not in table

    def test_random_equivalence(self, seeds):
        rng = seeds.rng(17)
        for trial in range(12):
            base = [frozenset(rng.sample(range(8), rng.randint(0, 5)))
                    for _ in range(rng.randint(4, 25))]
            increment = [frozenset(rng.sample(range(8), rng.randint(0, 5)))
                         for _ in range(rng.randint(1, 15))]
            keep = rng.choice([0.2, 0.3, 0.5])
            assert apply_fup(base, increment, keep) \
                == mine_directly(base + increment, keep), f"trial {trial}"

    def test_empty_increment_only_prunes(self):
        base = [frozenset({1, 2})] * 3
        table = mine_frequent_itemsets(base, min_count=2)
        index = build_vertical_index(base)
        report = fup_update(table, [], index=index, new_size=3,
                            keep_fraction=0.5,
                            constraint=UnrestrictedConstraint())
        assert report.added == [] and report.pruned == []


class TestFupReport:
    def test_report_fields(self):
        base = [frozenset({1, 2})] * 3
        increment = [frozenset({1, 2}), frozenset({7})]
        table = mine_frequent_itemsets(base, min_count=2)
        index = build_vertical_index(base + increment)
        report = fup_update(table, increment, index=index, new_size=5,
                            keep_fraction=0.4,
                            constraint=UnrestrictedConstraint())
        assert report.new_size == 5
        assert report.refreshed > 0
        assert all(itemset in table for itemset in report.added)

    def test_inconsistent_size_rejected(self):
        with pytest.raises(MaintenanceError):
            fup_update({}, [frozenset({1})] * 5, index={}, new_size=3,
                       keep_fraction=0.5,
                       constraint=UnrestrictedConstraint())

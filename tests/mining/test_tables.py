"""Unit tests for itemset-table helpers (subset walks, closure checks)."""

import itertools

from repro.mining.apriori import mine_frequent_itemsets
from repro.mining.tables import (
    check_downward_closure,
    increment_counts,
    iter_table_subsets,
    level_partition,
)


def brute_force_subsets(table, transaction, required=None):
    found = set()
    items = sorted(transaction)
    for length in range(1, len(items) + 1):
        for combo in itertools.combinations(items, length):
            if combo in table:
                if required is None or set(combo) & required:
                    found.add(combo)
    return found


class TestIterTableSubsets:
    def test_small_example(self):
        table = {(1,): 3, (2,): 3, (1, 2): 2, (3,): 1}
        transaction = frozenset({1, 2})
        assert set(iter_table_subsets(table, transaction)) \
            == {(1,), (2,), (1, 2)}

    def test_requires_all_items_present(self):
        table = {(1,): 1, (1, 2): 1}
        assert set(iter_table_subsets(table, frozenset({1}))) == {(1,)}

    def test_required_items_filter(self):
        table = {(1,): 1, (2,): 1, (1, 2): 1}
        transaction = frozenset({1, 2})
        assert set(iter_table_subsets(table, transaction,
                                      required_items=frozenset({2}))) \
            == {(2,), (1, 2)}

    def test_exhaustive_against_brute_force(self, seeds):
        rng = seeds.rng(3)
        for trial in range(10):
            transactions = [
                frozenset(rng.sample(range(10), rng.randint(0, 6)))
                for _ in range(25)
            ]
            table = mine_frequent_itemsets(transactions, min_count=2)
            transaction = frozenset(rng.sample(range(10), rng.randint(0, 8)))
            required = (None if trial % 2 == 0
                        else frozenset(rng.sample(range(10), 2)))
            walked = set(iter_table_subsets(table, transaction,
                                            required_items=required))
            assert walked == brute_force_subsets(table, transaction,
                                                 required), f"trial {trial}"

    def test_empty_transaction(self):
        assert set(iter_table_subsets({(1,): 1}, frozenset())) == set()


class TestIncrementCounts:
    def test_counts_and_touch_count(self):
        table = {(1,): 5, (2,): 5, (1, 2): 3}
        touched = increment_counts(table, frozenset({1, 2}))
        assert touched == 3
        assert table == {(1,): 6, (2,): 6, (1, 2): 4}

    def test_negative_delta(self):
        table = {(1,): 5, (1, 2): 3}
        increment_counts(table, frozenset({1, 2}), delta=-1)
        assert table == {(1,): 4, (1, 2): 2}

    def test_required_items(self):
        table = {(1,): 5, (2,): 5, (1, 2): 3}
        increment_counts(table, frozenset({1, 2}),
                         required_items=frozenset({2}))
        assert table == {(1,): 5, (2,): 6, (1, 2): 4}


class TestLevelPartition:
    def test_partition(self):
        table = {(1,): 1, (2,): 1, (1, 2): 1, (1, 2, 3): 1}
        levels = level_partition(table)
        assert levels == {1: {(1,), (2,)}, 2: {(1, 2)}, 3: {(1, 2, 3)}}


class TestClosureCheck:
    def test_closed_table_passes(self):
        table = mine_frequent_itemsets(
            [frozenset({1, 2}), frozenset({1, 2}), frozenset({2, 3})],
            min_count=1)
        assert check_downward_closure(table) == []

    def test_missing_subset_detected(self):
        problems = check_downward_closure({(1, 2): 2, (1,): 2})
        assert any("missing" in problem for problem in problems)

    def test_count_monotonicity_violation_detected(self):
        problems = check_downward_closure({(1,): 1, (2,): 2, (1, 2): 2})
        assert any("<" in problem for problem in problems)

    def test_constraint_aware(self):
        # (1,2) subset missing but inadmissible -> not a violation.
        problems = check_downward_closure(
            {(1, 2, 3): 1, (1, 2): 1, (1, 3): 1, (2, 3): 1,
             (1,): 1, (3,): 1},
            admits=lambda itemset: itemset != (2,))
        assert problems == []

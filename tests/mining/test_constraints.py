"""Unit tests for the paper's early-elimination candidate constraints."""

import pytest

from repro.mining.constraints import (
    AnnotationOnlyConstraint,
    AtMostOneAnnotationConstraint,
    CombinedRelevanceConstraint,
    MiningTask,
    UnrestrictedConstraint,
    constraint_for_task,
    violation_is_monotone,
)
from repro.mining.itemsets import ItemVocabulary


@pytest.fixture
def vocabulary():
    vocab = ItemVocabulary()
    # ids: 0,1 data; 2,3 annotations; 4 label
    vocab.intern_data("x")
    vocab.intern_data("y")
    vocab.intern_annotation("A")
    vocab.intern_annotation("B")
    vocab.intern_label("L")
    return vocab


class TestUnrestricted:
    def test_admits_everything(self):
        constraint = UnrestrictedConstraint()
        assert constraint.admits((0, 1, 2))
        assert constraint.admits(())
        assert constraint.admits_item(7)

    def test_projection_is_identity(self):
        transaction = frozenset({1, 2})
        assert UnrestrictedConstraint().project(transaction) == transaction


class TestAnnotationOnly:
    def test_admits_pure_annotation_patterns(self, vocabulary):
        constraint = AnnotationOnlyConstraint(vocabulary)
        assert constraint.admits((2, 3))
        assert constraint.admits((2, 4))  # labels count as annotations
        assert not constraint.admits((0, 2))

    def test_projection_strips_data(self, vocabulary):
        constraint = AnnotationOnlyConstraint(vocabulary)
        assert constraint.project(frozenset({0, 1, 2, 4})) == frozenset({2, 4})


class TestAtMostOneAnnotation:
    def test_data_only_admitted(self, vocabulary):
        constraint = AtMostOneAnnotationConstraint(vocabulary)
        assert constraint.admits((0, 1))

    def test_single_annotation_admitted(self, vocabulary):
        constraint = AtMostOneAnnotationConstraint(vocabulary)
        assert constraint.admits((0, 1, 2))

    def test_two_annotations_rejected(self, vocabulary):
        constraint = AtMostOneAnnotationConstraint(vocabulary)
        assert not constraint.admits((2, 3))
        assert not constraint.admits((0, 2, 4))


class TestCombinedRelevance:
    def test_partition(self, vocabulary):
        constraint = CombinedRelevanceConstraint(vocabulary)
        assert constraint.admits((0, 1))        # data-only
        assert constraint.admits((0, 2))        # one annotation
        assert constraint.admits((2, 3, 4))     # annotation-only
        assert not constraint.admits((0, 2, 3))  # mixed, 2+ annotations

    def test_violations_are_monotone(self, vocabulary):
        constraint = CombinedRelevanceConstraint(vocabulary)
        violating = (0, 2, 3)
        for extra in (1, 4):
            superset = tuple(sorted(violating + (extra,)))
            assert violation_is_monotone(constraint, violating, superset)
            assert not constraint.admits(superset)


class TestTaskFactory:
    def test_task_mapping(self, vocabulary):
        assert isinstance(
            constraint_for_task(MiningTask.DATA_TO_ANNOTATION, vocabulary),
            AtMostOneAnnotationConstraint)
        assert isinstance(
            constraint_for_task(MiningTask.ANNOTATION_TO_ANNOTATION,
                                vocabulary),
            AnnotationOnlyConstraint)
        assert isinstance(
            constraint_for_task(MiningTask.COMBINED, vocabulary),
            CombinedRelevanceConstraint)
        assert isinstance(
            constraint_for_task(MiningTask.UNRESTRICTED, vocabulary),
            UnrestrictedConstraint)

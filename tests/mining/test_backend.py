"""Backend registry and cross-backend lifecycle equivalence."""

import pytest

from repro.core.engine import engine
from repro.errors import MiningError
from repro.mining.backend import (
    AprioriFupBackend,
    DEFAULT_BACKEND,
    EclatBackend,
    FPGrowthBackend,
    MiningBackend,
    available_backends,
    get_backend,
    register_backend,
)
from tests.conftest import assert_equivalent_to_remine, make_relation

ALL_BACKENDS = ("apriori-fup", "eclat", "fpgrowth")


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(ALL_BACKENDS) <= set(available_backends())
        assert DEFAULT_BACKEND == "apriori-fup"

    @pytest.mark.parametrize("name,cls", [
        ("apriori-fup", AprioriFupBackend),
        ("eclat", EclatBackend),
        ("fpgrowth", FPGrowthBackend),
    ])
    def test_get_backend_instantiates(self, name, cls):
        backend = get_backend(name)
        assert isinstance(backend, cls)
        assert isinstance(backend, MiningBackend)
        assert backend.name == name

    def test_unknown_backend_names_the_alternatives(self):
        with pytest.raises(MiningError, match="eclat"):
            get_backend("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(MiningError):
            register_backend("eclat", EclatBackend)

    def test_replace_allows_reregistration(self):
        register_backend("eclat", EclatBackend, replace=True)
        assert isinstance(get_backend("eclat"), EclatBackend)

    def test_bad_factory_product_rejected(self):
        register_backend("broken", lambda: object(), replace=True)
        try:
            with pytest.raises(MiningError, match="protocol"):
                get_backend("broken")
        finally:
            from repro.mining import backend as backend_module
            backend_module._REGISTRY.pop("broken", None)


#: The same event script the manager scenario tests run: the paper's
#: three cases plus both removal extensions.
def run_lifecycle(backend_name, counter="auto"):
    eng = engine(make_relation(), min_support=0.25, min_confidence=0.6,
                 backend=backend_name, counter=counter, validate=True)
    eng.mine()
    signatures = [eng.signature()]
    eng.add_annotations([(3, "A"), (5, "A"), (0, "B")])        # Case 3
    signatures.append(eng.signature())
    eng.insert_annotated([(("1", "2"), ("A",)),                # Case 1
                          (("4", "3"), ("B",))])
    signatures.append(eng.signature())
    eng.insert_unannotated([("4", "9"), ("1", "9")])           # Case 2
    signatures.append(eng.signature())
    eng.remove_annotations([(5, "A"), (1, "B")])               # removal ext.
    signatures.append(eng.signature())
    eng.remove_tuples([7, 2])                                  # deletion ext.
    signatures.append(eng.signature())
    return eng, signatures


def run_lifecycle_trail(backend_name, counter):
    """Per-step (pattern table, sorted rules) snapshots over the same
    lifecycle — the byte-level comparison behind the counter substrate."""
    eng = engine(make_relation(), min_support=0.25, min_confidence=0.6,
                 backend=backend_name, counter=counter, validate=True)
    trail = []

    def snap():
        trail.append((dict(eng.table.counts),
                      tuple(eng.rules.sorted_rules())))

    eng.mine()
    snap()
    eng.add_annotations([(3, "A"), (5, "A"), (0, "B")])
    snap()
    eng.insert_annotated([(("1", "2"), ("A",)), (("4", "3"), ("B",))])
    snap()
    eng.insert_unannotated([("4", "9"), ("1", "9")])
    snap()
    eng.remove_annotations([(5, "A"), (1, "B")])
    snap()
    eng.remove_tuples([7, 2])
    snap()
    return trail


class TestLifecycleEquivalence:
    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_backend_matches_its_own_remine(self, backend_name):
        eng, _signatures = run_lifecycle(backend_name)
        assert eng.backend_name == backend_name
        verification = eng.verify_against_remine()
        assert verification.equivalent, verification.explain()
        assert_equivalent_to_remine(eng)

    def test_all_backends_agree_step_by_step(self):
        trails = {name: run_lifecycle(name)[1] for name in ALL_BACKENDS}
        reference = trails[DEFAULT_BACKEND]
        for name, signatures in trails.items():
            assert signatures == reference, (
                f"backend {name} diverged from {DEFAULT_BACKEND}")

    @pytest.mark.parametrize("backend_name", ["eclat", "fpgrowth"])
    def test_non_apriori_backends_reject_counter_knob(self, backend_name):
        eng = engine(make_relation(), min_support=0.25, min_confidence=0.6,
                     backend=backend_name, counter="scan")
        with pytest.raises(MiningError, match="counter"):
            eng.mine()

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_vertical_counter_full_lifecycle(self, backend_name):
        """counter="vertical" runs the whole incremental lifecycle on
        every backend and still matches its own re-mine."""
        eng, _signatures = run_lifecycle(backend_name, counter="vertical")
        verification = eng.verify_against_remine()
        assert verification.equivalent, verification.explain()
        assert_equivalent_to_remine(eng)

    def test_vertical_counter_tables_identical_to_horizontal(self):
        """The acceptance bar for the bitmap substrate: byte-identical
        pattern tables and rules to the scan/hashtree counters, for all
        three backends, at every step of the incremental lifecycle."""
        reference = run_lifecycle_trail("apriori-fup", "scan")
        assert run_lifecycle_trail("apriori-fup", "hashtree") == reference
        for backend_name in ALL_BACKENDS:
            trail = run_lifecycle_trail(backend_name, "vertical")
            assert trail == reference, (
                f"backend {backend_name} with counter='vertical' diverged "
                f"from the horizontal counters")

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_max_length_respected(self, backend_name):
        eng = engine(make_relation(), min_support=0.25, min_confidence=0.6,
                     backend=backend_name, max_length=2, validate=True)
        eng.mine()
        eng.insert_annotated([(("1", "3"), ("A", "B"))])
        assert max(len(itemset) for itemset in eng.table) <= 2
        assert eng.verify_against_remine().equivalent

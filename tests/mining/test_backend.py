"""Backend registry and cross-backend lifecycle equivalence."""

import pytest

from repro.core.engine import engine
from repro.errors import MiningError
from repro.mining.backend import (
    AprioriFupBackend,
    DEFAULT_BACKEND,
    EclatBackend,
    FPGrowthBackend,
    MiningBackend,
    available_backends,
    get_backend,
    register_backend,
)
from tests.conftest import assert_equivalent_to_remine, make_relation

ALL_BACKENDS = ("apriori-fup", "eclat", "fpgrowth")


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(ALL_BACKENDS) <= set(available_backends())
        assert DEFAULT_BACKEND == "apriori-fup"

    @pytest.mark.parametrize("name,cls", [
        ("apriori-fup", AprioriFupBackend),
        ("eclat", EclatBackend),
        ("fpgrowth", FPGrowthBackend),
    ])
    def test_get_backend_instantiates(self, name, cls):
        backend = get_backend(name)
        assert isinstance(backend, cls)
        assert isinstance(backend, MiningBackend)
        assert backend.name == name

    def test_unknown_backend_names_the_alternatives(self):
        with pytest.raises(MiningError, match="eclat"):
            get_backend("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(MiningError):
            register_backend("eclat", EclatBackend)

    def test_replace_allows_reregistration(self):
        register_backend("eclat", EclatBackend, replace=True)
        assert isinstance(get_backend("eclat"), EclatBackend)

    def test_bad_factory_product_rejected(self):
        register_backend("broken", lambda: object(), replace=True)
        try:
            with pytest.raises(MiningError, match="protocol"):
                get_backend("broken")
        finally:
            from repro.mining import backend as backend_module
            backend_module._REGISTRY.pop("broken", None)


#: The same event script the manager scenario tests run: the paper's
#: three cases plus both removal extensions.
def run_lifecycle(backend_name):
    eng = engine(make_relation(), min_support=0.25, min_confidence=0.6,
                 backend=backend_name, validate=True)
    eng.mine()
    signatures = [eng.signature()]
    eng.add_annotations([(3, "A"), (5, "A"), (0, "B")])        # Case 3
    signatures.append(eng.signature())
    eng.insert_annotated([(("1", "2"), ("A",)),                # Case 1
                          (("4", "3"), ("B",))])
    signatures.append(eng.signature())
    eng.insert_unannotated([("4", "9"), ("1", "9")])           # Case 2
    signatures.append(eng.signature())
    eng.remove_annotations([(5, "A"), (1, "B")])               # removal ext.
    signatures.append(eng.signature())
    eng.remove_tuples([7, 2])                                  # deletion ext.
    signatures.append(eng.signature())
    return eng, signatures


class TestLifecycleEquivalence:
    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_backend_matches_its_own_remine(self, backend_name):
        eng, _signatures = run_lifecycle(backend_name)
        assert eng.backend_name == backend_name
        verification = eng.verify_against_remine()
        assert verification.equivalent, verification.explain()
        assert_equivalent_to_remine(eng)

    def test_all_backends_agree_step_by_step(self):
        trails = {name: run_lifecycle(name)[1] for name in ALL_BACKENDS}
        reference = trails[DEFAULT_BACKEND]
        for name, signatures in trails.items():
            assert signatures == reference, (
                f"backend {name} diverged from {DEFAULT_BACKEND}")

    @pytest.mark.parametrize("backend_name", ["eclat", "fpgrowth"])
    def test_non_apriori_backends_reject_counter_knob(self, backend_name):
        eng = engine(make_relation(), min_support=0.25, min_confidence=0.6,
                     backend=backend_name, counter="scan")
        with pytest.raises(MiningError, match="counter"):
            eng.mine()

    @pytest.mark.parametrize("backend_name", ALL_BACKENDS)
    def test_max_length_respected(self, backend_name):
        eng = engine(make_relation(), min_support=0.25, min_confidence=0.6,
                     backend=backend_name, max_length=2, validate=True)
        eng.mine()
        eng.insert_annotated([(("1", "3"), ("A", "B"))])
        assert max(len(itemset) for itemset in eng.table) <= 2
        assert eng.verify_against_remine().equivalent

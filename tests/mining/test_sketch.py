"""Bottom-k tidset sketches: the mixer, single-item samples, the index.

The approximate serving tier stands on three unit-level guarantees
checked here: the hash mixer is a bijection (exhaustive samples *are*
the tidset), sketch maintenance tracks exact cardinalities through any
insert/discard churn, and every non-exact estimate stays inside its
feasible ceiling with a non-negative bound.
"""

import pytest

from repro.errors import MiningError
from repro.mining.sketch import (
    DEFAULT_SALT,
    Estimate,
    SketchIndex,
    TidsetSketch,
    combine_rule_estimate,
    mix64,
    sum_estimates,
    z_score,
)


class TestMix64:
    def test_bijective_on_a_dense_window(self):
        hashes = {mix64(value) for value in range(20_000)}
        assert len(hashes) == 20_000

    def test_deterministic_and_64_bit(self):
        assert mix64(12345) == mix64(12345)
        assert 0 <= mix64(0) < (1 << 64)
        assert 0 <= mix64((1 << 64) - 1) < (1 << 64)

    def test_salt_decorrelates(self):
        assert mix64(7, DEFAULT_SALT) != mix64(7, DEFAULT_SALT + 2)


class TestZScore:
    def test_standard_levels(self):
        assert z_score(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_score(0.99) == pytest.approx(2.575829, abs=1e-5)

    def test_monotone_in_the_level(self):
        assert z_score(0.99) > z_score(0.95) > z_score(0.5)

    @pytest.mark.parametrize("level", (0.0, 1.0, -0.5, 1.5))
    def test_out_of_range_rejected(self, level):
        with pytest.raises(MiningError, match=r"\(0, 1\)"):
            z_score(level)


class TestEstimate:
    def test_negative_bound_rejected(self):
        with pytest.raises(MiningError, match=">= 0"):
            Estimate(value=1.0, bound=-0.1, exact=False)

    def test_exactly(self):
        estimate = Estimate.exactly(4.0)
        assert estimate == Estimate(value=4.0, bound=0.0, exact=True)

    def test_sum_adds_values_and_bounds(self):
        total = sum_estimates([
            Estimate(3.0, 0.5, False),
            Estimate(2.0, 0.0, True),
            Estimate(1.0, 0.25, False),
        ])
        assert total.value == pytest.approx(6.0)
        assert total.bound == pytest.approx(0.75)
        assert not total.exact

    def test_sum_of_exacts_stays_exact(self):
        total = sum_estimates([Estimate.exactly(2.0), Estimate.exactly(3.0)])
        assert total == Estimate(5.0, 0.0, True)

    def test_empty_sum_is_exact_zero(self):
        assert sum_estimates([]) == Estimate(0.0, 0.0, True)


class TestCombineRuleEstimate:
    def test_arithmetic(self):
        combined = combine_rule_estimate(
            both=Estimate(3.0, 0.5, False),
            lhs=Estimate(6.0, 0.25, False),
            rhs_count=4, db_size=10)
        assert combined.support == pytest.approx(0.3)
        assert combined.support_bound == pytest.approx(0.05)
        assert combined.confidence == pytest.approx(0.5)
        # Ratio propagation: (d_both + conf * d_lhs) / lhs.
        assert combined.confidence_bound == pytest.approx(
            (0.5 + 0.5 * 0.25) / 6.0)
        assert combined.lift == pytest.approx(0.5 / 0.4)
        assert combined.lift_bound == pytest.approx(
            combined.confidence_bound / 0.4)
        assert combined.count == pytest.approx(3.0)
        assert not combined.exact

    def test_exact_inputs_give_exact_output(self):
        combined = combine_rule_estimate(
            both=Estimate.exactly(3.0), lhs=Estimate.exactly(6.0),
            rhs_count=4, db_size=10)
        assert combined.exact
        assert combined.confidence_bound == 0.0

    def test_bounds_clamped_into_unit_range(self):
        combined = combine_rule_estimate(
            both=Estimate(5.0, 100.0, False),
            lhs=Estimate(5.0, 100.0, False),
            rhs_count=5, db_size=10)
        assert combined.support_bound <= 1.0
        assert combined.confidence_bound <= 1.0

    def test_empty_database_yields_zeros(self):
        combined = combine_rule_estimate(
            both=Estimate.exactly(0.0), lhs=Estimate.exactly(0.0),
            rhs_count=0, db_size=0)
        assert combined.support == combined.confidence == combined.lift == 0.0


class TestTidsetSketch:
    def test_small_k_rejected(self):
        with pytest.raises(MiningError, match=">= 8"):
            TidsetSketch(k=4)

    def test_exhaustive_sample_is_the_tidset(self):
        sketch = TidsetSketch(k=16)
        tids = [3, 9, 27, 81]
        for tid in tids:
            sketch.insert(tid)
        assert sketch.is_exhaustive
        assert sketch.cardinality == len(sketch) == 4
        assert sketch.sample == {mix64(tid) for tid in tids}

    def test_overflow_keeps_the_bottom_k(self):
        sketch = TidsetSketch(k=16)
        tids = range(200)
        for tid in tids:
            sketch.insert(tid)
        assert not sketch.is_exhaustive
        assert sketch.cardinality == 200
        expected = sorted(mix64(tid) for tid in tids)[:16]
        assert sorted(sketch.sample) == expected
        assert sketch.max_hash == expected[-1]

    def test_from_tids_equals_incremental_inserts(self):
        tids = list(range(0, 300, 7))
        bulk = TidsetSketch.from_tids(tids, k=16)
        incremental = TidsetSketch(k=16)
        for tid in tids:
            incremental.insert(tid)
        assert bulk.sample == incremental.sample
        assert bulk.cardinality == incremental.cardinality

    def test_discard_from_exhaustive_sketch(self):
        sketch = TidsetSketch.from_tids([1, 2, 3], k=8)
        sketch.discard(2)
        assert sketch.sample == {mix64(1), mix64(3)}
        assert sketch.cardinality == 2

    def test_discard_unsampled_tid_keeps_the_sample(self):
        tids = list(range(100))
        sketch = TidsetSketch.from_tids(tids, k=8)
        victim = max(tids, key=mix64)   # certainly not in the bottom-8
        assert mix64(victim) not in sketch
        before = sketch.sample
        sketch.discard(victim)          # no remaining tidset needed
        assert sketch.sample == before
        assert sketch.cardinality == 99

    def test_discard_sampled_tid_rebuilds_from_survivors(self):
        tids = list(range(100))
        sketch = TidsetSketch.from_tids(tids, k=8)
        victim = min(tids, key=mix64)   # certainly in the bottom-8
        survivors = [tid for tid in tids if tid != victim]
        sketch.discard(victim, survivors)
        assert sorted(sketch.sample) == sorted(
            mix64(tid) for tid in survivors)[:8]
        assert sketch.cardinality == 99

    def test_discard_sampled_without_survivors_rejected(self):
        tids = list(range(100))
        sketch = TidsetSketch.from_tids(tids, k=8)
        victim = min(tids, key=mix64)
        with pytest.raises(MiningError, match="remaining tidset"):
            sketch.discard(victim)

    def test_empty_sketch_has_no_max_hash(self):
        with pytest.raises(MiningError, match="empty"):
            TidsetSketch(k=8).max_hash

    def test_payload_round_trip(self):
        sketch = TidsetSketch.from_tids(range(50), k=8)
        clone = TidsetSketch.from_payload(sketch.to_payload(), k=8)
        assert clone.sample == sketch.sample
        assert clone.cardinality == sketch.cardinality
        assert clone.max_hash == sketch.max_hash

    def test_payload_validation(self):
        with pytest.raises(MiningError, match="hashes for k=8"):
            TidsetSketch.from_payload((tuple(range(9)), 9), k=8)
        with pytest.raises(MiningError, match="below sample size"):
            TidsetSketch.from_payload(((1, 2, 3), 2), k=8)


class TestSketchIndex:
    def test_from_mapping_skips_empty_tidsets(self):
        index = SketchIndex.from_mapping({1: [0, 1], 2: []}, k=8)
        assert 1 in index and 2 not in index
        assert index.items() == [1]

    def test_observer_protocol_tracks_cardinality(self):
        index = SketchIndex(k=8)
        for tid in range(30):
            index.on_add(5, tid)
        assert index.cardinality(5) == 30
        # Deletes always pass the remaining tidset; the sketch only
        # looks at it when a sampled hash leaves a full sample.
        remaining = set(range(30))
        for tid in range(10):
            remaining.discard(tid)
            index.on_discard(5, tid, set(remaining))
        assert index.cardinality(5) == 20

    def test_item_dropped_at_zero_cardinality(self):
        index = SketchIndex(k=8)
        index.on_add(7, 0)
        index.on_discard(7, 0, ())
        assert 7 not in index and len(index) == 0
        assert index.cardinality(7) == 0

    def test_discard_of_unknown_item_is_a_noop(self):
        index = SketchIndex(k=8)
        index.on_discard(99, 0, ())
        assert len(index) == 0

    def test_exhaustive_intersection_is_exact(self):
        index = SketchIndex.from_mapping(
            {1: range(0, 60, 2), 2: range(0, 60, 3)}, k=64)
        estimate = index.itemset_estimate((1, 2))
        assert estimate.exact and estimate.bound == 0.0
        assert estimate.value == 10.0   # multiples of 6 below 60

    def test_missing_item_short_circuits_to_zero(self):
        index = SketchIndex.from_mapping({1: range(10)}, k=8)
        assert index.itemset_estimate((1, 99)) == Estimate.exactly(0.0)

    def test_empty_itemset_rejected(self):
        with pytest.raises(MiningError, match="at least one item"):
            SketchIndex(k=8).itemset_estimate(())

    def test_sampled_estimate_respects_the_feasible_ceiling(self):
        index = SketchIndex.from_mapping(
            {1: range(0, 4000, 2), 2: range(0, 4000, 3)}, k=16)
        estimate = index.itemset_estimate((1, 2))
        assert not estimate.exact
        ceiling = min(index.cardinality(1), index.cardinality(2))
        assert 0.0 <= estimate.value <= ceiling
        assert 0.0 <= estimate.bound <= ceiling

    def test_sampled_estimate_covers_the_true_count(self):
        # 2000/2000 tids with exactly 500 shared: deterministic hashes,
        # so this is a fixed regression point, not a flaky sample.
        shared = range(0, 500)
        index = SketchIndex.from_mapping(
            {1: [*shared, *range(10_000, 11_500)],
             2: [*shared, *range(20_000, 21_500)]}, k=64)
        estimate = index.itemset_estimate((1, 2), z=2.0)
        assert not estimate.exact
        assert abs(estimate.value - 500.0) <= estimate.bound

    def test_rule_estimate_exact_at_small_scale(self):
        index = SketchIndex.from_mapping(
            {1: range(8), 2: range(4, 12)}, k=64)
        rule = index.rule_estimate((1,), 2, db_size=12)
        assert rule.exact
        assert rule.support == pytest.approx(4 / 12)
        assert rule.confidence == pytest.approx(4 / 8)
        assert rule.lift == pytest.approx((4 / 8) / (8 / 12))

    def test_payload_round_trip_preserves_estimates(self):
        index = SketchIndex.from_mapping(
            {1: range(0, 3000, 2), 2: range(0, 3000, 3)}, k=16)
        clone = SketchIndex.from_payload(index.to_payload(), k=16)
        assert clone.itemset_estimate((1, 2)) == index.itemset_estimate((1, 2))
        assert clone.cardinality(1) == index.cardinality(1)

"""Unit tests for the bitmap-backed vertical counting substrate."""


import pytest

from repro.mining.bitmap import BitmapIndex, BitTidset

TRANSACTIONS = [
    frozenset({1, 3, 4}),
    frozenset({2, 3, 5}),
    frozenset({1, 2, 3, 5}),
    frozenset({2, 5}),
]


class TestBitTidset:
    def test_from_tids_round_trip(self):
        tids = {0, 3, 17, 200}
        tidset = BitTidset.from_tids(tids)
        assert set(tidset) == tids
        assert len(tidset) == 4
        assert tidset == tids

    def test_membership(self):
        tidset = BitTidset.from_tids({2, 5})
        assert 2 in tidset and 5 in tidset
        assert 0 not in tidset and 64 not in tidset
        assert -1 not in tidset

    def test_set_algebra_matches_sets(self, seeds):
        rng = seeds.rng(5)
        for _ in range(20):
            left = set(rng.sample(range(130), rng.randint(0, 40)))
            right = set(rng.sample(range(130), rng.randint(0, 40)))
            bit_left = BitTidset.from_tids(left)
            bit_right = BitTidset.from_tids(right)
            assert set(bit_left & bit_right) == left & right
            assert set(bit_left | bit_right) == left | right
            assert set(bit_left - bit_right) == left - right
            assert bit_left.isdisjoint(bit_right) == left.isdisjoint(right)

    def test_truthiness_and_equality(self):
        assert not BitTidset()
        assert BitTidset.from_tids({0})
        assert BitTidset.from_tids({1, 2}) == BitTidset.from_tids({2, 1})
        assert BitTidset.from_tids({1}) != BitTidset.from_tids({2})
        assert hash(BitTidset.from_tids({7})) == hash(BitTidset.from_tids({7}))

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            BitTidset(-1)

    def test_from_tids_negative_tid_rejected(self):
        with pytest.raises(ValueError):
            BitTidset.from_tids([3, -1])

    def test_from_tids_word_boundaries(self):
        """The bulk (bytearray) build is exact at every byte/word seam
        and for duplicates — same bits as the per-tid reference."""
        edge_tids = [0, 7, 8, 63, 64, 65, 127, 128, 511, 512, 4096, 0, 64]
        bulk = BitTidset.from_tids(edge_tids)
        reference = 0
        for tid in edge_tids:
            reference |= 1 << tid
        assert bulk.bits == reference
        assert set(bulk) == set(edge_tids)

    def test_from_tids_matches_shift_reference_randomized(self, seeds):
        rng = seeds.rng(61)
        for _ in range(25):
            tids = [rng.randrange(0, rng.choice((9, 65, 1025, 70_000)))
                    for _ in range(rng.randint(0, 60))]
            reference = 0
            for tid in tids:
                reference |= 1 << tid
            assert BitTidset.from_tids(tids).bits == reference

    def test_from_tids_empty_and_singleton(self):
        assert BitTidset.from_tids([]).bits == 0
        assert not BitTidset.from_tids([])
        assert BitTidset.from_tids([0]).bits == 1
        assert BitTidset.from_tids(iter([70_001])).bits == 1 << 70_001


class TestBitmapIndex:
    def test_from_transactions(self):
        index = BitmapIndex.from_transactions(TRANSACTIONS)
        assert index.tidset(3) == {0, 1, 2}
        assert index.tidset(4) == {0}
        assert index.frequency(2) == 3
        assert index.frequency(99) == 0

    def test_count_by_intersection(self):
        index = BitmapIndex.from_transactions(TRANSACTIONS)
        assert index.count((2, 5)) == 3
        assert index.count((1, 4)) == 1
        assert index.count((4, 5)) == 0
        assert index.count((9,)) == 0
        with pytest.raises(ValueError):
            index.count(())

    def test_tids_of(self):
        index = BitmapIndex.from_transactions(TRANSACTIONS)
        assert index.tids_of((2, 5)) == {1, 2, 3}
        assert index.tids_of((4, 5)) == set()
        with pytest.raises(ValueError):
            index.tids_of(())

    def test_discard_prunes_empty_buckets(self):
        index = BitmapIndex.from_transactions(TRANSACTIONS)
        assert 4 in index
        assert index.discard(4, 0) is True
        assert 4 not in index
        assert 4 not in index.items()
        assert index.discard(4, 0) is False  # already gone
        assert index.frequency(4) == 0

    def test_as_mapping_is_read_only_and_live(self):
        index = BitmapIndex.from_transactions(TRANSACTIONS)
        view = index.as_mapping()
        with pytest.raises(TypeError):
            view[1] = BitTidset.from_tids({0})
        with pytest.raises(AttributeError):
            view[1].add(9)  # values expose no mutators
        index.add(1, 3)
        assert 3 in view[1]  # live view reflects maintenance

    def test_matches_set_reference_on_random_databases(self, seeds):
        from repro.mining.eclat import build_vertical_index, count_itemset

        rng = seeds.rng(29)
        for _ in range(10):
            transactions = [
                frozenset(rng.sample(range(15), rng.randint(0, 8)))
                for _ in range(rng.randint(1, 50))
            ]
            sets = build_vertical_index(transactions)
            bitmaps = BitmapIndex.from_transactions(transactions)
            for item, tids in sets.items():
                assert bitmaps.tidset(item) == tids
            items = sorted(sets)
            for _ in range(25):
                itemset = tuple(sorted(
                    rng.sample(items, rng.randint(1, min(4, len(items))))))
                assert bitmaps.count(itemset) == count_itemset(sets, itemset)

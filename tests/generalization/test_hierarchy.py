"""Unit tests for the multi-level concept hierarchy."""

import pytest

from repro.errors import GeneralizationError
from repro.generalization.hierarchy import ConceptHierarchy


@pytest.fixture
def hierarchy():
    h = ConceptHierarchy.from_edges([
        ("Invalidation", "QualityIssue"),
        ("Correction", "QualityIssue"),
        ("QualityIssue", "Metadata"),
        ("Versioning", "Metadata"),
    ])
    return h


class TestConstruction:
    def test_self_edge_rejected(self):
        with pytest.raises(GeneralizationError):
            ConceptHierarchy().add_edge("A", "A")

    def test_cycle_rejected_and_rolled_back(self):
        hierarchy = ConceptHierarchy.from_edges([("A", "B"), ("B", "C")])
        with pytest.raises(GeneralizationError):
            hierarchy.add_edge("C", "A")
        # The offending edge must not have been kept.
        assert "A" not in hierarchy.ancestors("C")

    def test_empty_label_rejected(self):
        with pytest.raises(GeneralizationError):
            ConceptHierarchy().add_label("")


class TestQueries:
    def test_ancestors_transitive(self, hierarchy):
        assert hierarchy.ancestors("Invalidation") \
            == {"QualityIssue", "Metadata"}
        assert hierarchy.ancestors("Metadata") == frozenset()

    def test_unknown_label_has_no_ancestors(self, hierarchy):
        assert hierarchy.ancestors("Nope") == frozenset()

    def test_closure(self, hierarchy):
        closure = hierarchy.closure({"Invalidation", "Versioning"})
        assert closure == {"Invalidation", "QualityIssue", "Metadata",
                           "Versioning"}

    def test_roots(self, hierarchy):
        assert hierarchy.roots() == {"Metadata"}

    def test_levels(self, hierarchy):
        assert hierarchy.level_of("Metadata") == 0
        assert hierarchy.level_of("QualityIssue") == 1
        assert hierarchy.level_of("Invalidation") == 2
        with pytest.raises(GeneralizationError):
            hierarchy.level_of("Nope")

    def test_contains_and_labels(self, hierarchy):
        assert "Correction" in hierarchy
        assert "Metadata" in hierarchy.labels()


class TestPerLevelSupport:
    def test_decay(self, hierarchy):
        assert hierarchy.support_for_level(0.4, "Metadata") \
            == pytest.approx(0.4)
        assert hierarchy.support_for_level(0.4, "QualityIssue") \
            == pytest.approx(0.2)
        assert hierarchy.support_for_level(0.4, "Invalidation") \
            == pytest.approx(0.1)

    def test_bad_decay_rejected(self, hierarchy):
        with pytest.raises(GeneralizationError):
            hierarchy.support_for_level(0.4, "Metadata", decay=0.0)

    def test_floor(self, hierarchy):
        assert hierarchy.support_for_level(1e-7, "Invalidation") >= 1e-6

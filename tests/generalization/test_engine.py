"""Unit and integration tests for the generalization engine."""

import pytest

from repro.core.manager import AnnotationRuleManager
from repro.core.rules import RuleKind
from repro.errors import GeneralizationError
from repro.generalization.engine import Generalizer
from repro.generalization.hierarchy import ConceptHierarchy
from repro.generalization.rules import (
    GeneralizationRule,
    GeneralizationRuleSet,
    IdMatcher,
    KeywordMatcher,
)
from repro.mining.itemsets import ItemKind
from repro.relation.annotation import Annotation
from repro.relation.relation import AnnotatedRelation
from tests.conftest import assert_equivalent_to_remine


def build_generalizer(relation, hierarchy=None):
    rules = GeneralizationRuleSet([
        GeneralizationRule("Concept_X",
                           IdMatcher(frozenset({"Annot_1", "Annot_5"}))),
        GeneralizationRule("Invalidation",
                           KeywordMatcher(frozenset({"invalid", "wrong"}))),
    ])
    return Generalizer(relation.registry, rules, hierarchy)


class TestLabelsFor:
    def test_id_and_keyword_mapping(self):
        relation = AnnotatedRelation()
        relation.insert(("1",))
        relation.registry.register(Annotation("Annot_1"))
        relation.registry.register(Annotation("Annot_9",
                                              text="wrong value"))
        generalizer = build_generalizer(relation)
        assert generalizer.labels_for({"Annot_1"}) == {"Concept_X"}
        assert generalizer.labels_for({"Annot_9"}) == {"Invalidation"}
        assert generalizer.labels_for({"Annot_1", "Annot_9"}) \
            == {"Concept_X", "Invalidation"}

    def test_at_most_once(self):
        relation = AnnotatedRelation()
        relation.registry.register(Annotation("Annot_1"))
        relation.registry.register(Annotation("Annot_5"))
        generalizer = build_generalizer(relation)
        # Both raw annotations map to Concept_X -> one label, not two.
        assert generalizer.labels_for({"Annot_1", "Annot_5"}) \
            == {"Concept_X"}

    def test_hierarchy_closure_applied(self):
        relation = AnnotatedRelation()
        relation.registry.register(Annotation("Annot_1"))
        hierarchy = ConceptHierarchy.from_edges([
            ("Concept_X", "Metadata")])
        generalizer = build_generalizer(relation, hierarchy)
        assert generalizer.labels_for({"Annot_1"}) \
            == {"Concept_X", "Metadata"}

    def test_collision_with_label_rejected_lazily(self):
        relation = AnnotatedRelation()
        relation.registry.register(Annotation("Concept_X"))
        rules = GeneralizationRuleSet([
            GeneralizationRule("Other", IdMatcher(frozenset({"Annot_1"})))])
        generalizer = Generalizer(relation.registry, rules)
        generalizer.rules.add(
            GeneralizationRule("Concept_X",
                               IdMatcher(frozenset({"Annot_2"}))))
        with pytest.raises(GeneralizationError):
            generalizer.labels_for({"Concept_X"})

    def test_collision_at_construction(self):
        relation = AnnotatedRelation()
        relation.registry.register(Annotation("Concept_X"))
        with pytest.raises(GeneralizationError):
            build_generalizer(relation)

    def test_cache_invalidation(self):
        relation = AnnotatedRelation()
        relation.registry.register(Annotation("Annot_7"))
        generalizer = build_generalizer(relation)
        assert generalizer.labels_for({"Annot_7"}) == frozenset()
        generalizer.rules.add(GeneralizationRule(
            "Late", IdMatcher(frozenset({"Annot_7"}))))
        # Memoized: still empty until the cache is invalidated.
        assert generalizer.labels_for({"Annot_7"}) == frozenset()
        generalizer.invalidate_cache()
        assert generalizer.labels_for({"Annot_7"}) == {"Late"}


class TestApplyToRelation:
    def test_labels_written(self):
        relation = AnnotatedRelation()
        relation.insert(("1",), ("Annot_1",))
        relation.insert(("2",))
        generalizer = build_generalizer(relation)
        changed = generalizer.apply_to_relation(relation)
        assert changed == 1
        assert relation.tuple(0).labels == {"Concept_X"}
        assert relation.tuple(1).labels == set()

    def test_reapply_is_idempotent(self):
        relation = AnnotatedRelation()
        relation.insert(("1",), ("Annot_1",))
        generalizer = build_generalizer(relation)
        generalizer.apply_to_relation(relation)
        assert generalizer.apply_to_relation(relation) == 0


class TestManagerIntegration:
    def _relation(self):
        relation = AnnotatedRelation()
        # The "Invalidation" concept arrives under two raw ids, each
        # individually below threshold; the label aggregates them.
        relation.registry.register(Annotation("Annot_bad1",
                                              text="invalid entry"))
        relation.registry.register(Annotation("Annot_bad2",
                                              text="wrong measurement"))
        for _ in range(3):
            relation.insert(("1", "2"), ("Annot_bad1",))
        for _ in range(3):
            relation.insert(("1", "3"), ("Annot_bad2",))
        for _ in range(4):
            relation.insert(("4", "2"))
        return relation

    def test_generalized_rules_surface(self):
        relation = self._relation()
        generalizer = build_generalizer(relation)
        manager = AnnotationRuleManager(relation, min_support=0.5,
                                        min_confidence=0.9,
                                        generalizer=generalizer,
                                        validate=True)
        manager.mine()
        label_rules = [
            rule for rule in manager.rules
            if manager.vocabulary.item(rule.rhs).kind is ItemKind.LABEL
        ]
        assert label_rules, "generalized label should head a rule"
        raw_rules = [
            rule for rule in manager.rules
            if manager.vocabulary.item(rule.rhs).kind is ItemKind.ANNOTATION
        ]
        assert not raw_rules, "raw annotations are below threshold"

    def test_incremental_labels_under_case3(self):
        relation = self._relation()
        generalizer = build_generalizer(relation)
        manager = AnnotationRuleManager(relation, min_support=0.4,
                                        min_confidence=0.8,
                                        generalizer=generalizer,
                                        validate=True)
        manager.mine()
        # Annotating an un-annotated tuple must also attach the label
        # incrementally and stay equivalent to a full re-mine.
        manager.add_annotations([(6, "Annot_bad1"), (7, "Annot_bad2")])
        assert relation.tuple(6).labels == {"Invalidation"}
        assert_equivalent_to_remine(manager)

    def test_label_removal_under_detach(self):
        relation = self._relation()
        generalizer = build_generalizer(relation)
        manager = AnnotationRuleManager(relation, min_support=0.4,
                                        min_confidence=0.8,
                                        generalizer=generalizer,
                                        validate=True)
        manager.mine()
        manager.remove_annotations([(0, "Annot_bad1")])
        assert relation.tuple(0).labels == set()
        assert_equivalent_to_remine(manager)

"""Unit tests for generalization rules and matchers."""

import pytest

from repro.errors import GeneralizationError
from repro.generalization.rules import (
    CategoryMatcher,
    GeneralizationRule,
    GeneralizationRuleSet,
    IdMatcher,
    KeywordMatcher,
    RegexMatcher,
)
from repro.relation.annotation import Annotation


class TestIdMatcher:
    def test_matches_by_id(self):
        matcher = IdMatcher(frozenset({"Annot_1", "Annot_5"}))
        assert matcher.matches(Annotation("Annot_1"))
        assert not matcher.matches(Annotation("Annot_2"))

    def test_empty_rejected(self):
        with pytest.raises(GeneralizationError):
            IdMatcher(frozenset())

    def test_describe_round_trippable(self):
        matcher = IdMatcher(frozenset({"Annot_5", "Annot_1"}))
        assert matcher.describe() == "Annot_1 | Annot_5"


class TestKeywordMatcher:
    def test_matches_any_keyword(self):
        matcher = KeywordMatcher(frozenset({"invalid", "wrong"}))
        assert matcher.matches(Annotation("x", text="This looks WRONG"))
        assert matcher.matches(Annotation("x", text="invalid!"))
        assert not matcher.matches(Annotation("x", text="fine"))

    def test_whole_words_only(self):
        matcher = KeywordMatcher(frozenset({"invalid"}))
        assert not matcher.matches(Annotation("x", text="invalidated"))

    def test_keywords_lowercased(self):
        matcher = KeywordMatcher(frozenset({"WRONG"}))
        assert matcher.matches(Annotation("x", text="wrong"))

    def test_empty_rejected(self):
        with pytest.raises(GeneralizationError):
            KeywordMatcher(frozenset())

    def test_describe(self):
        matcher = KeywordMatcher(frozenset({"b", "a"}))
        assert matcher.describe() == 'text has "a" "b"'


class TestRegexMatcher:
    def test_matches(self):
        matcher = RegexMatcher(r"v[0-9]+")
        assert matcher.matches(Annotation("x", text="updated in V17"))
        assert not matcher.matches(Annotation("x", text="no version"))

    def test_bad_pattern_rejected(self):
        with pytest.raises(GeneralizationError):
            RegexMatcher("([unclosed")

    def test_describe(self):
        assert RegexMatcher("a+").describe() == 'text ~ "a+"'


class TestCategoryMatcher:
    def test_matches(self):
        matcher = CategoryMatcher("provenance")
        assert matcher.matches(Annotation("x", category="provenance"))
        assert not matcher.matches(Annotation("x", category="quality"))

    def test_empty_rejected(self):
        with pytest.raises(GeneralizationError):
            CategoryMatcher("")


class TestGeneralizationRule:
    def test_applies_and_describe(self):
        rule = GeneralizationRule("Invalidation",
                                  KeywordMatcher(frozenset({"invalid"})))
        assert rule.applies_to(Annotation("x", text="invalid"))
        assert rule.describe() == 'Invalidation <= text has "invalid"'

    def test_empty_label_rejected(self):
        with pytest.raises(GeneralizationError):
            GeneralizationRule("", IdMatcher(frozenset({"A"})))


class TestRuleSet:
    def test_labels_for_annotation_union(self):
        rules = GeneralizationRuleSet([
            GeneralizationRule("L1", IdMatcher(frozenset({"A"}))),
            GeneralizationRule("L2", KeywordMatcher(frozenset({"bad"}))),
            GeneralizationRule("L3", IdMatcher(frozenset({"B"}))),
        ])
        labels = rules.labels_for_annotation(Annotation("A", text="bad data"))
        assert labels == {"L1", "L2"}

    def test_labels(self):
        rules = GeneralizationRuleSet([
            GeneralizationRule("L1", IdMatcher(frozenset({"A"}))),
            GeneralizationRule("L1", IdMatcher(frozenset({"B"}))),
        ])
        assert rules.labels() == {"L1"}
        assert len(rules) == 2

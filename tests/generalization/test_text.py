"""Unit tests for text normalization."""

from repro.generalization.text import contains_word, normalize, tokenize


class TestNormalize:
    def test_case_folding_and_whitespace(self):
        assert normalize("  This   VALUE\tis wrong ") == "this value is wrong"


class TestTokenize:
    def test_punctuation_stripped(self):
        assert tokenize("INVALID!! (see ticket #42)") \
            == ("invalid", "see", "ticket", "42")

    def test_apostrophes_kept_inside_words(self):
        assert tokenize("value isn't right") == ("value", "isn't", "right")

    def test_empty(self):
        assert tokenize("") == ()


class TestContainsWord:
    def test_whole_word_only(self):
        assert contains_word("this is invalid", "invalid")
        assert not contains_word("invalidated entry", "invalid")

    def test_case_insensitive(self):
        assert contains_word("WRONG value", "wrong")
